// Shard wire-protocol tests: lossless round-trips for every spec kind and a
// fully-populated incident/result, rejection (never a crash) of truncated
// and garbage payloads, and the worker process runner's outcome
// classification.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cerrno>
#include <utility>

#include "switchv/shard_io.h"
#include "switchv/shard_transport.h"

namespace switchv {
namespace {

// ---------------------------------------------------------------------------
// Spec round-trips
// ---------------------------------------------------------------------------

WireShardSpec ControlPlaneSpec() {
  WireShardSpec spec;
  spec.kind = WireShardSpec::Kind::kControlPlane;
  spec.index = 3;
  spec.scenario.role = models::Role::kWan;
  spec.scenario.model.omit_ttl_trap = true;
  spec.scenario.model.acl_wrong_icmp_field = true;
  spec.scenario.workload.num_ipv4_routes = 123;
  spec.scenario.workload.num_decap = 7;
  // 64-bit seed with the high bit set: must never round through a double.
  spec.scenario.entry_seed = 0xDEADBEEFCAFEF00DULL;
  spec.faults = {sut::Fault::kDeleteNonExistingFailsBatch,
                 sut::Fault::kAclResourceLeak,
                 sut::Fault::kBmv2RejectsValidOptional};
  spec.control_plane.num_requests = 5;
  spec.control_plane.updates_per_request = 17;
  spec.control_plane.seed = 0xFFFFFFFFFFFFFF15ULL;
  spec.control_plane.max_incidents = 9;
  // Probabilities that do not terminate in binary: exact round-trip needs
  // max_digits10 printing.
  spec.control_plane.fuzzer.invalid_probability = 0.1234567891011;
  spec.control_plane.fuzzer.delete_probability = 1.0 / 3.0;
  spec.control_plane.fuzzer.modify_probability = 0.0;
  spec.control_plane.fuzzer.use_bdd_for_constraints = false;
  spec.control_plane.fuzzer.priority_table_bias = 2.0 / 7.0;
  spec.dataplane_on_fuzzed_state = true;
  spec.flight_recorder_capacity = 5;
  spec.trace = true;
  return spec;
}

TEST(ShardIoSpecTest, ControlPlaneSpecRoundTrips) {
  const WireShardSpec spec = ControlPlaneSpec();
  const std::string line = SerializeShardSpec(spec);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "spec must be one line";

  const StatusOr<WireShardSpec> parsed = ParseShardSpec(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->kind, spec.kind);
  EXPECT_EQ(parsed->index, spec.index);
  EXPECT_EQ(parsed->scenario.role, spec.scenario.role);
  EXPECT_EQ(parsed->scenario.model.omit_ttl_trap, true);
  EXPECT_EQ(parsed->scenario.model.omit_broadcast_drop, false);
  EXPECT_EQ(parsed->scenario.model.acl_after_rewrite, false);
  EXPECT_EQ(parsed->scenario.model.acl_wrong_icmp_field, true);
  EXPECT_EQ(parsed->scenario.workload.num_ipv4_routes, 123);
  EXPECT_EQ(parsed->scenario.workload.num_decap, 7);
  EXPECT_EQ(parsed->scenario.workload.num_vrfs,
            spec.scenario.workload.num_vrfs);
  EXPECT_EQ(parsed->scenario.entry_seed, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(parsed->faults, spec.faults);
  EXPECT_EQ(parsed->control_plane.num_requests, 5);
  EXPECT_EQ(parsed->control_plane.updates_per_request, 17);
  EXPECT_EQ(parsed->control_plane.seed, 0xFFFFFFFFFFFFFF15ULL);
  EXPECT_EQ(parsed->control_plane.max_incidents, 9);
  EXPECT_EQ(parsed->control_plane.fuzzer.invalid_probability,
            0.1234567891011);
  EXPECT_EQ(parsed->control_plane.fuzzer.delete_probability, 1.0 / 3.0);
  EXPECT_EQ(parsed->control_plane.fuzzer.modify_probability, 0.0);
  EXPECT_EQ(parsed->control_plane.fuzzer.use_bdd_for_constraints, false);
  EXPECT_EQ(parsed->control_plane.fuzzer.priority_table_bias, 2.0 / 7.0);
  EXPECT_EQ(parsed->dataplane_on_fuzzed_state, true);
  EXPECT_EQ(parsed->flight_recorder_capacity, 5);
  EXPECT_EQ(parsed->trace, true);
  EXPECT_FALSE(parsed->has_packets);
  // Wire specs never carry process-local pointers.
  EXPECT_EQ(parsed->control_plane.metrics, nullptr);
  EXPECT_EQ(parsed->dataplane.metrics, nullptr);
  EXPECT_EQ(parsed->dataplane.precomputed_packets, nullptr);
}

TEST(ShardIoSpecTest, DataplaneSpecWithPacketsRoundTrips) {
  WireShardSpec spec;
  spec.kind = WireShardSpec::Kind::kDataplane;
  spec.index = 4;
  spec.dataplane.coverage = symbolic::CoverageMode::kBranchAndEntryCoverage;
  spec.dataplane.max_incidents = 3;
  spec.dataplane.packet_out_ports = 2;
  spec.dataplane.packet_shard = 1;
  spec.dataplane.packet_shards = 2;
  spec.has_packets = true;
  // Raw packet bytes: NULs, high bytes, and a target id with JSON
  // metacharacters all survive the wire.
  symbolic::TestPacket packet;
  packet.bytes = std::string("\x00\xff\x01\x7f\"\\\n", 7);
  packet.ingress_port = 65535;
  packet.target_id = "table \"ipv4\"\nbranch\t3";
  spec.packets.push_back(packet);
  spec.packets.push_back(symbolic::TestPacket{});

  const StatusOr<WireShardSpec> parsed =
      ParseShardSpec(SerializeShardSpec(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->kind, WireShardSpec::Kind::kDataplane);
  EXPECT_EQ(parsed->dataplane.coverage,
            symbolic::CoverageMode::kBranchAndEntryCoverage);
  EXPECT_EQ(parsed->dataplane.max_incidents, 3);
  EXPECT_EQ(parsed->dataplane.packet_out_ports, 2);
  EXPECT_EQ(parsed->dataplane.packet_shard, 1);
  EXPECT_EQ(parsed->dataplane.packet_shards, 2);
  ASSERT_TRUE(parsed->has_packets);
  ASSERT_EQ(parsed->packets.size(), 2u);
  EXPECT_EQ(parsed->packets[0].bytes, packet.bytes);
  EXPECT_EQ(parsed->packets[0].ingress_port, 65535);
  EXPECT_EQ(parsed->packets[0].target_id, packet.target_id);
  EXPECT_EQ(parsed->packets[1].bytes, "");
}

// ---------------------------------------------------------------------------
// Result round-trip
// ---------------------------------------------------------------------------

TEST(ShardIoResultTest, FullyPopulatedResultRoundTrips) {
  WireShardResult result;
  result.index = 2;
  Incident incident{Detector::kHarness,
                    "summary with \"quotes\",\nnewline and \x01 control",
                    "details line 1\nline 2\ttabbed"};
  incident.table_id = 0xFFFFFFFFu;
  incident.shard = 2;
  incident.layer = sut::SutLayer::kHarness;
  incident.replay_trace = "op 1: write\nop 2: read\n";
  result.incidents.push_back(incident);
  Incident second{Detector::kSymbolic, "packet diverged", "..."};
  second.layer = sut::SutLayer::kAsic;
  result.incidents.push_back(second);
  result.fuzzed_updates = 412;
  result.packets_tested = 37;
  result.generation.targets_total = 40;
  result.generation.targets_covered = 37;
  result.generation.targets_infeasible = 3;
  result.generation.solver_queries = 41;
  result.generation.cache_hit = true;

  Metrics metrics;
  metrics.Add(metrics.updates_sent, 412);
  metrics.Add(metrics.oracle_findings, 2);
  metrics.Add(metrics.switch_writes, 99);
  metrics.Add(metrics.worker_retries, 1);
  metrics.Add(metrics.oracle_ns, 123456789);
  metrics.oracle_hist.Record(1500);
  metrics.oracle_hist.Record(3000000);
  metrics.switch_write_hist.Record(999);
  result.metrics = metrics.Snapshot(/*wall_seconds=*/1.5);

  TraceSpan span;
  span.name = "control-plane shard";
  span.category = "shard";
  span.shard = 2;
  span.seq = 7;
  span.parent_seq = 3;
  span.start_ns = 0xFFFFFFFFFFFFULL;
  span.duration_ns = 42;
  span.args.emplace_back("seed", "17");
  span.args.emplace_back("note", "args with \"quotes\"");
  result.spans.push_back(span);

  const std::string line = SerializeShardResult(result);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "result must be one line";
  const StatusOr<WireShardResult> parsed = ParseShardResult(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  EXPECT_EQ(parsed->index, 2);
  ASSERT_EQ(parsed->incidents.size(), 2u);
  const Incident& roundtrip = parsed->incidents[0];
  EXPECT_EQ(roundtrip.detector, Detector::kHarness);
  EXPECT_EQ(roundtrip.summary, incident.summary);
  EXPECT_EQ(roundtrip.details, incident.details);
  EXPECT_EQ(roundtrip.table_id, 0xFFFFFFFFu);
  EXPECT_EQ(roundtrip.shard, 2);
  EXPECT_EQ(roundtrip.layer, sut::SutLayer::kHarness);
  EXPECT_EQ(roundtrip.replay_trace, incident.replay_trace);
  // The fingerprint — the merge identity — survives the wire.
  EXPECT_EQ(IncidentFingerprint(roundtrip), IncidentFingerprint(incident));
  EXPECT_EQ(parsed->incidents[1].detector, Detector::kSymbolic);
  EXPECT_EQ(parsed->incidents[1].layer, sut::SutLayer::kAsic);

  EXPECT_EQ(parsed->fuzzed_updates, 412);
  EXPECT_EQ(parsed->packets_tested, 37);
  EXPECT_EQ(parsed->generation.targets_total, 40);
  EXPECT_EQ(parsed->generation.targets_covered, 37);
  EXPECT_EQ(parsed->generation.targets_infeasible, 3);
  EXPECT_EQ(parsed->generation.solver_queries, 41);
  EXPECT_TRUE(parsed->generation.cache_hit);

  EXPECT_EQ(parsed->metrics.updates_sent, 412u);
  EXPECT_EQ(parsed->metrics.oracle_findings, 2u);
  EXPECT_EQ(parsed->metrics.switch_writes, 99u);
  EXPECT_EQ(parsed->metrics.worker_retries, 1u);
  EXPECT_EQ(parsed->metrics.oracle_ns, 123456789u);
  EXPECT_EQ(parsed->metrics.oracle_hist.count, 2u);
  EXPECT_EQ(parsed->metrics.oracle_hist.sum_ns, 1500u + 3000000u);
  EXPECT_EQ(parsed->metrics.oracle_hist.counts,
            result.metrics.oracle_hist.counts);
  EXPECT_EQ(parsed->metrics.switch_write_hist.count, 1u);
  // wall_seconds is worker-local and deliberately not on the wire.
  EXPECT_EQ(parsed->metrics.wall_seconds, 0.0);

  ASSERT_EQ(parsed->spans.size(), 1u);
  EXPECT_EQ(parsed->spans[0].name, span.name);
  EXPECT_EQ(parsed->spans[0].category, span.category);
  EXPECT_EQ(parsed->spans[0].shard, 2);
  EXPECT_EQ(parsed->spans[0].seq, 7u);
  EXPECT_EQ(parsed->spans[0].parent_seq, 3u);
  EXPECT_EQ(parsed->spans[0].start_ns, span.start_ns);
  EXPECT_EQ(parsed->spans[0].duration_ns, 42u);
  EXPECT_EQ(parsed->spans[0].args, span.args);
}

// ---------------------------------------------------------------------------
// Rejection: truncated and garbage payloads produce a clear status, never a
// crash. A worker can die mid-write, so every prefix of a valid line must
// be handled.
// ---------------------------------------------------------------------------

TEST(ShardIoRejectionTest, EveryTruncationOfAValidSpecIsRejected) {
  WireShardSpec spec = ControlPlaneSpec();
  spec.has_packets = true;
  symbolic::TestPacket packet;
  packet.bytes = "\xab\xcd";
  spec.packets.push_back(packet);
  const std::string line = SerializeShardSpec(spec);
  ASSERT_TRUE(ParseShardSpec(line).ok());
  for (std::size_t len = 0; len < line.size(); ++len) {
    const StatusOr<WireShardSpec> parsed =
        ParseShardSpec(std::string_view(line).substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "prefix of length " << len << " accepted";
  }
}

TEST(ShardIoRejectionTest, EveryTruncationOfAValidResultIsRejected) {
  WireShardResult result;
  result.index = 1;
  Incident incident{Detector::kFuzzer, "entry 17 missing", "details"};
  result.incidents.push_back(incident);
  result.metrics = Metrics().Snapshot(0);
  const std::string line = SerializeShardResult(result);
  ASSERT_TRUE(ParseShardResult(line).ok());
  for (std::size_t len = 0; len < line.size(); ++len) {
    const StatusOr<WireShardResult> parsed =
        ParseShardResult(std::string_view(line).substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "prefix of length " << len << " accepted";
  }
}

TEST(ShardIoRejectionTest, GarbagePayloadsAreRejectedWithClearStatus) {
  const std::string_view garbage[] = {
      "",
      "not json at all",
      "{}",
      "null",
      "[1,2,3]",
      R"({"switchv_shard_spec":"one"})",
      R"({"wrong_tag":1})",
      "{\"switchv_shard_spec\":1,\"kind\":\"warp-drive\"}",
      "\"just a string\"",
      "{\"switchv_shard_spec\":1",  // unterminated object
      "{\"a\":\"unterminated string",
      "{\"a\":1e999}",  // number out of double range
  };
  for (const std::string_view payload : garbage) {
    const StatusOr<WireShardSpec> spec = ParseShardSpec(payload);
    EXPECT_FALSE(spec.ok()) << "accepted: " << payload;
    EXPECT_FALSE(spec.status().message().empty());
    EXPECT_FALSE(ParseShardResult(payload).ok());
  }
}

TEST(ShardIoRejectionTest, DeeplyNestedGarbageHitsTheDepthLimitCleanly) {
  const std::string bomb(10000, '[');
  EXPECT_FALSE(ParseShardSpec(bomb).ok());
  const std::string object_bomb = [] {
    std::string s;
    for (int i = 0; i < 10000; ++i) s += "{\"a\":";
    return s;
  }();
  EXPECT_FALSE(ParseShardSpec(object_bomb).ok());
}

TEST(ShardIoRejectionTest, UnknownVersionAndOutOfRangeEnumsAreRejected) {
  const std::string line = SerializeShardSpec(ControlPlaneSpec());
  // Version bump: a mixed-version fleet must fail loudly.
  std::string wrong_version = line;
  const std::string tag = "\"switchv_shard_spec\":1";
  wrong_version.replace(wrong_version.find(tag), tag.size(),
                        "\"switchv_shard_spec\":99");
  const StatusOr<WireShardSpec> version = ParseShardSpec(wrong_version);
  ASSERT_FALSE(version.ok());
  EXPECT_NE(version.status().message().find("version"), std::string::npos);

  // Fault ids are bounds-checked against the catalog.
  std::string bad_fault = line;
  const std::string faults = "\"faults\":[";
  bad_fault.replace(bad_fault.find(faults), faults.size(),
                    "\"faults\":[9999,");
  const StatusOr<WireShardSpec> fault = ParseShardSpec(bad_fault);
  ASSERT_FALSE(fault.ok());
  EXPECT_NE(fault.status().message().find("fault"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Worker process runner
// ---------------------------------------------------------------------------

TEST(WorkerProcessTest, EchoBinaryRoundTripsStdinToStdout) {
  // /bin/cat is the identity worker: payload in, payload out, exit 0.
  const WorkerProcessResult result =
      RunWorkerProcess("/bin/cat", {}, "hello shard protocol\n",
                       /*timeout_seconds=*/30);
  EXPECT_EQ(result.outcome, WorkerProcessResult::Outcome::kExited);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.stdout_data, "hello shard protocol\n");
}

TEST(WorkerProcessTest, LargePayloadDoesNotDeadlockThePipes) {
  // Larger than any pipe buffer in both directions: the runner must
  // interleave writing stdin with draining stdout.
  const std::string payload(4 * 1024 * 1024, 'x');
  const WorkerProcessResult result =
      RunWorkerProcess("/bin/cat", {}, payload, /*timeout_seconds=*/60);
  EXPECT_EQ(result.outcome, WorkerProcessResult::Outcome::kExited);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.stdout_data.size(), payload.size());
}

TEST(WorkerProcessTest, MissingBinaryReportsExecFailure) {
  const WorkerProcessResult result = RunWorkerProcess(
      "/nonexistent/switchv_worker", {}, "", /*timeout_seconds=*/30);
  EXPECT_EQ(result.outcome, WorkerProcessResult::Outcome::kExited);
  EXPECT_EQ(result.exit_code, 127);
}

TEST(WorkerProcessTest, HungWorkerIsKilledAtTheDeadline) {
  const auto start = std::chrono::steady_clock::now();
  const WorkerProcessResult result =
      RunWorkerProcess("/bin/sleep", {"30"}, "", /*timeout_seconds=*/0.5);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(result.outcome, WorkerProcessResult::Outcome::kTimedOut);
  EXPECT_LT(elapsed, 15.0) << "runner must not wait for the full sleep";
}

// The SIGKILL-on-timeout path must always reap the child. A worker-host
// slot that leaks one zombie per timed-out shard exhausts the process
// table over a nightly campaign; after a burst of timeouts there must be
// no children left at all.
TEST(WorkerProcessTest, TimedOutWorkersLeaveNoZombies) {
  for (int i = 0; i < 8; ++i) {
    const WorkerProcessResult result =
        RunWorkerProcess("/bin/sleep", {"30"}, "", /*timeout_seconds=*/0.05);
    EXPECT_EQ(result.outcome, WorkerProcessResult::Outcome::kTimedOut);
  }
  // With every child reaped, waitpid(-1) has nothing to report: ECHILD,
  // not a pid (a zombie) and not 0 (a live straggler).
  errno = 0;
  EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

// ---------------------------------------------------------------------------
// Socket framing (switchv/shard_transport.h): the same never-crash
// contract as the JSON layer, applied to the length-prefixed frames the
// TCP transport wraps those lines in.
// ---------------------------------------------------------------------------

// Pops one frame from a decoder that must hold exactly one.
Frame MustDecode(std::string_view bytes) {
  FrameDecoder decoder;
  decoder.Feed(bytes);
  StatusOr<std::optional<Frame>> frame = decoder.Next();
  EXPECT_TRUE(frame.ok()) << frame.status();
  EXPECT_TRUE(frame->has_value());
  return frame.ok() && frame->has_value() ? **std::move(frame) : Frame{};
}

TEST(FrameTest, EncodeDecodeRoundTripsEveryType) {
  const std::pair<FrameType, std::string> cases[] = {
      {FrameType::kShardRequest, "request payload"},
      {FrameType::kShardResult, std::string("binary\x00payload", 14)},
      {FrameType::kShardError, ""},
      {FrameType::kHeartbeat, ""},
  };
  for (const auto& [type, payload] : cases) {
    const Frame frame = MustDecode(EncodeFrame(type, payload));
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(FrameTest, EveryPrefixOfAValidFrameNeedsMoreBytes) {
  // A truncated frame — any truncation — is "not yet", never a crash and
  // never a phantom frame.
  const std::string wire =
      EncodeFrame(FrameType::kShardResult, "a result line with bytes");
  for (std::size_t len = 0; len < wire.size(); ++len) {
    FrameDecoder decoder;
    decoder.Feed(std::string_view(wire).substr(0, len));
    const StatusOr<std::optional<Frame>> frame = decoder.Next();
    ASSERT_TRUE(frame.ok()) << "prefix of length " << len << ": "
                            << frame.status();
    EXPECT_FALSE(frame->has_value()) << "prefix of length " << len
                                     << " produced a frame";
  }
}

TEST(FrameTest, SplitReadsAcrossFrameBoundariesReassembleExactly) {
  // Three frames fed one byte at a time — the worst TCP segmentation —
  // must pop as exactly the three originals, in order.
  const std::string wire = EncodeFrame(FrameType::kShardRequest, "spec") +
                           EncodeFrame(FrameType::kHeartbeat, "") +
                           EncodeFrame(FrameType::kShardResult, "result");
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (const char byte : wire) {
    decoder.Feed(std::string_view(&byte, 1));
    while (true) {
      StatusOr<std::optional<Frame>> frame = decoder.Next();
      ASSERT_TRUE(frame.ok()) << frame.status();
      if (!frame->has_value()) break;
      frames.push_back(**std::move(frame));
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::kShardRequest);
  EXPECT_EQ(frames[0].payload, "spec");
  EXPECT_EQ(frames[1].type, FrameType::kHeartbeat);
  EXPECT_EQ(frames[1].payload, "");
  EXPECT_EQ(frames[2].type, FrameType::kShardResult);
  EXPECT_EQ(frames[2].payload, "result");
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameTest, OversizedLengthPrefixIsRejectedNotBuffered) {
  // length = kMaxFramePayload + 1: must fail immediately on the header,
  // not wait for 256 MiB that will never arrive.
  std::string wire = EncodeFrame(FrameType::kShardResult, "");
  const std::uint32_t huge = kMaxFramePayload + 1;
  wire[5] = static_cast<char>(huge >> 24);
  wire[6] = static_cast<char>(huge >> 16);
  wire[7] = static_cast<char>(huge >> 8);
  wire[8] = static_cast<char>(huge);
  FrameDecoder decoder;
  decoder.Feed(wire);
  const StatusOr<std::optional<Frame>> frame = decoder.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, MidStreamGarbageCorruptsTheStreamPermanently) {
  const std::string good = EncodeFrame(FrameType::kHeartbeat, "");
  // Explicit lengths throughout: several entries carry embedded NULs.
  const std::string_view garbage[] = {
      {"GET / HTTP/1.1\r\n", 16},              // wrong protocol entirely
      {"SwV2\x01\x00\x00\x00\x00", 9},         // wrong magic version
      {"SwV1\x09\x00\x00\x00\x00", 9},         // right magic, unknown type 9
      {"\x00\x00\x00\x00\x00\x00\x00\x00", 8}, // zeros
  };
  for (const std::string_view bad : garbage) {
    FrameDecoder decoder;
    decoder.Feed(good);     // one clean frame first
    decoder.Feed(bad);      // then corruption mid-stream
    decoder.Feed(good);     // and valid bytes after it
    StatusOr<std::optional<Frame>> first = decoder.Next();
    ASSERT_TRUE(first.ok() && first->has_value());
    EXPECT_EQ((*first)->type, FrameType::kHeartbeat);
    // The corruption is terminal: no resynchronization onto the trailing
    // valid frame — every subsequent Next() reports the same corruption.
    for (int i = 0; i < 3; ++i) {
      const StatusOr<std::optional<Frame>> next = decoder.Next();
      ASSERT_FALSE(next.ok()) << "garbage accepted: " << bad;
      EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(FrameTest, EveryTruncationOfAValidRequestEnvelopeIsRejected) {
  RemoteShardRequest request;
  request.campaign_id = 0xDEADBEEFCAFEF00DULL;
  request.shard = 7;
  request.attempt = 2;
  request.timeout_seconds = 120.5;
  request.spec_line = SerializeShardSpec(ControlPlaneSpec());
  const std::string payload = SerializeRemoteRequest(request);
  const StatusOr<RemoteShardRequest> parsed = ParseRemoteRequest(payload);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->campaign_id, request.campaign_id);
  EXPECT_EQ(parsed->shard, request.shard);
  EXPECT_EQ(parsed->attempt, request.attempt);
  EXPECT_EQ(parsed->timeout_seconds, request.timeout_seconds);
  EXPECT_EQ(parsed->spec_line, request.spec_line);
  // The envelope header is rejected at every truncation point; the
  // spec-line body is shard_io's responsibility (covered above).
  const std::size_t header_end = payload.find('\n') + 1;
  for (std::size_t len = 0; len < header_end; ++len) {
    EXPECT_FALSE(
        ParseRemoteRequest(std::string_view(payload).substr(0, len)).ok())
        << "envelope prefix of length " << len << " accepted";
  }
}

TEST(FrameTest, GarbageEnvelopesAreRejectedWithClearStatus) {
  const std::string_view garbage[] = {
      "",
      "not an envelope",
      "switchv-shard-request",                      // no fields
      "switchv-shard-request 99 1 0 0 120\nspec",   // wrong version
      "switchv-shard-request 1 x 0 0 120\nspec",    // non-numeric id
      "switchv-shard-request 1 1 0 0\nspec",        // missing field
      "switchv-shard-error 1 not-a-kind\nnote",     // unknown error kind
      "switchv-shard-error 1\n",                    // missing kind
  };
  for (const std::string_view payload : garbage) {
    const StatusOr<RemoteShardRequest> request = ParseRemoteRequest(payload);
    EXPECT_FALSE(request.ok()) << "request accepted: " << payload;
    EXPECT_FALSE(request.status().message().empty());
    EXPECT_FALSE(ParseRemoteError(payload).ok())
        << "error accepted: " << payload;
  }
}

TEST(FrameTest, ErrorEnvelopeRoundTripsEveryKind) {
  const RemoteShardError::Kind kinds[] = {
      RemoteShardError::Kind::kCrash, RemoteShardError::Kind::kTimeout,
      RemoteShardError::Kind::kExit, RemoteShardError::Kind::kSpawn,
      RemoteShardError::Kind::kBadRequest,
  };
  for (const RemoteShardError::Kind kind : kinds) {
    RemoteShardError error;
    error.kind = kind;
    error.note = "shard worker said:\nmulti-line\ndetail";
    const StatusOr<RemoteShardError> parsed =
        ParseRemoteError(SerializeRemoteError(error));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->kind, kind);
    EXPECT_EQ(parsed->note, error.note);
  }
}

}  // namespace
}  // namespace switchv
