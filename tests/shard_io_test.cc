// Shard wire-protocol tests: lossless round-trips for every spec kind and a
// fully-populated incident/result, rejection (never a crash) of truncated
// and garbage payloads, and the worker process runner's outcome
// classification.
#include <gtest/gtest.h>

#include "switchv/shard_io.h"

namespace switchv {
namespace {

// ---------------------------------------------------------------------------
// Spec round-trips
// ---------------------------------------------------------------------------

WireShardSpec ControlPlaneSpec() {
  WireShardSpec spec;
  spec.kind = WireShardSpec::Kind::kControlPlane;
  spec.index = 3;
  spec.scenario.role = models::Role::kWan;
  spec.scenario.model.omit_ttl_trap = true;
  spec.scenario.model.acl_wrong_icmp_field = true;
  spec.scenario.workload.num_ipv4_routes = 123;
  spec.scenario.workload.num_decap = 7;
  // 64-bit seed with the high bit set: must never round through a double.
  spec.scenario.entry_seed = 0xDEADBEEFCAFEF00DULL;
  spec.faults = {sut::Fault::kDeleteNonExistingFailsBatch,
                 sut::Fault::kAclResourceLeak,
                 sut::Fault::kBmv2RejectsValidOptional};
  spec.control_plane.num_requests = 5;
  spec.control_plane.updates_per_request = 17;
  spec.control_plane.seed = 0xFFFFFFFFFFFFFF15ULL;
  spec.control_plane.max_incidents = 9;
  // Probabilities that do not terminate in binary: exact round-trip needs
  // max_digits10 printing.
  spec.control_plane.fuzzer.invalid_probability = 0.1234567891011;
  spec.control_plane.fuzzer.delete_probability = 1.0 / 3.0;
  spec.control_plane.fuzzer.modify_probability = 0.0;
  spec.control_plane.fuzzer.use_bdd_for_constraints = false;
  spec.control_plane.fuzzer.priority_table_bias = 2.0 / 7.0;
  spec.dataplane_on_fuzzed_state = true;
  spec.flight_recorder_capacity = 5;
  spec.trace = true;
  return spec;
}

TEST(ShardIoSpecTest, ControlPlaneSpecRoundTrips) {
  const WireShardSpec spec = ControlPlaneSpec();
  const std::string line = SerializeShardSpec(spec);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "spec must be one line";

  const StatusOr<WireShardSpec> parsed = ParseShardSpec(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->kind, spec.kind);
  EXPECT_EQ(parsed->index, spec.index);
  EXPECT_EQ(parsed->scenario.role, spec.scenario.role);
  EXPECT_EQ(parsed->scenario.model.omit_ttl_trap, true);
  EXPECT_EQ(parsed->scenario.model.omit_broadcast_drop, false);
  EXPECT_EQ(parsed->scenario.model.acl_after_rewrite, false);
  EXPECT_EQ(parsed->scenario.model.acl_wrong_icmp_field, true);
  EXPECT_EQ(parsed->scenario.workload.num_ipv4_routes, 123);
  EXPECT_EQ(parsed->scenario.workload.num_decap, 7);
  EXPECT_EQ(parsed->scenario.workload.num_vrfs,
            spec.scenario.workload.num_vrfs);
  EXPECT_EQ(parsed->scenario.entry_seed, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(parsed->faults, spec.faults);
  EXPECT_EQ(parsed->control_plane.num_requests, 5);
  EXPECT_EQ(parsed->control_plane.updates_per_request, 17);
  EXPECT_EQ(parsed->control_plane.seed, 0xFFFFFFFFFFFFFF15ULL);
  EXPECT_EQ(parsed->control_plane.max_incidents, 9);
  EXPECT_EQ(parsed->control_plane.fuzzer.invalid_probability,
            0.1234567891011);
  EXPECT_EQ(parsed->control_plane.fuzzer.delete_probability, 1.0 / 3.0);
  EXPECT_EQ(parsed->control_plane.fuzzer.modify_probability, 0.0);
  EXPECT_EQ(parsed->control_plane.fuzzer.use_bdd_for_constraints, false);
  EXPECT_EQ(parsed->control_plane.fuzzer.priority_table_bias, 2.0 / 7.0);
  EXPECT_EQ(parsed->dataplane_on_fuzzed_state, true);
  EXPECT_EQ(parsed->flight_recorder_capacity, 5);
  EXPECT_EQ(parsed->trace, true);
  EXPECT_FALSE(parsed->has_packets);
  // Wire specs never carry process-local pointers.
  EXPECT_EQ(parsed->control_plane.metrics, nullptr);
  EXPECT_EQ(parsed->dataplane.metrics, nullptr);
  EXPECT_EQ(parsed->dataplane.precomputed_packets, nullptr);
}

TEST(ShardIoSpecTest, DataplaneSpecWithPacketsRoundTrips) {
  WireShardSpec spec;
  spec.kind = WireShardSpec::Kind::kDataplane;
  spec.index = 4;
  spec.dataplane.coverage = symbolic::CoverageMode::kBranchAndEntryCoverage;
  spec.dataplane.max_incidents = 3;
  spec.dataplane.packet_out_ports = 2;
  spec.dataplane.packet_shard = 1;
  spec.dataplane.packet_shards = 2;
  spec.has_packets = true;
  // Raw packet bytes: NULs, high bytes, and a target id with JSON
  // metacharacters all survive the wire.
  symbolic::TestPacket packet;
  packet.bytes = std::string("\x00\xff\x01\x7f\"\\\n", 7);
  packet.ingress_port = 65535;
  packet.target_id = "table \"ipv4\"\nbranch\t3";
  spec.packets.push_back(packet);
  spec.packets.push_back(symbolic::TestPacket{});

  const StatusOr<WireShardSpec> parsed =
      ParseShardSpec(SerializeShardSpec(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->kind, WireShardSpec::Kind::kDataplane);
  EXPECT_EQ(parsed->dataplane.coverage,
            symbolic::CoverageMode::kBranchAndEntryCoverage);
  EXPECT_EQ(parsed->dataplane.max_incidents, 3);
  EXPECT_EQ(parsed->dataplane.packet_out_ports, 2);
  EXPECT_EQ(parsed->dataplane.packet_shard, 1);
  EXPECT_EQ(parsed->dataplane.packet_shards, 2);
  ASSERT_TRUE(parsed->has_packets);
  ASSERT_EQ(parsed->packets.size(), 2u);
  EXPECT_EQ(parsed->packets[0].bytes, packet.bytes);
  EXPECT_EQ(parsed->packets[0].ingress_port, 65535);
  EXPECT_EQ(parsed->packets[0].target_id, packet.target_id);
  EXPECT_EQ(parsed->packets[1].bytes, "");
}

// ---------------------------------------------------------------------------
// Result round-trip
// ---------------------------------------------------------------------------

TEST(ShardIoResultTest, FullyPopulatedResultRoundTrips) {
  WireShardResult result;
  result.index = 2;
  Incident incident{Detector::kHarness,
                    "summary with \"quotes\",\nnewline and \x01 control",
                    "details line 1\nline 2\ttabbed"};
  incident.table_id = 0xFFFFFFFFu;
  incident.shard = 2;
  incident.layer = sut::SutLayer::kHarness;
  incident.replay_trace = "op 1: write\nop 2: read\n";
  result.incidents.push_back(incident);
  Incident second{Detector::kSymbolic, "packet diverged", "..."};
  second.layer = sut::SutLayer::kAsic;
  result.incidents.push_back(second);
  result.fuzzed_updates = 412;
  result.packets_tested = 37;
  result.generation.targets_total = 40;
  result.generation.targets_covered = 37;
  result.generation.targets_infeasible = 3;
  result.generation.solver_queries = 41;
  result.generation.cache_hit = true;

  Metrics metrics;
  metrics.Add(metrics.updates_sent, 412);
  metrics.Add(metrics.oracle_findings, 2);
  metrics.Add(metrics.switch_writes, 99);
  metrics.Add(metrics.worker_retries, 1);
  metrics.Add(metrics.oracle_ns, 123456789);
  metrics.oracle_hist.Record(1500);
  metrics.oracle_hist.Record(3000000);
  metrics.switch_write_hist.Record(999);
  result.metrics = metrics.Snapshot(/*wall_seconds=*/1.5);

  TraceSpan span;
  span.name = "control-plane shard";
  span.category = "shard";
  span.shard = 2;
  span.seq = 7;
  span.parent_seq = 3;
  span.start_ns = 0xFFFFFFFFFFFFULL;
  span.duration_ns = 42;
  span.args.emplace_back("seed", "17");
  span.args.emplace_back("note", "args with \"quotes\"");
  result.spans.push_back(span);

  const std::string line = SerializeShardResult(result);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "result must be one line";
  const StatusOr<WireShardResult> parsed = ParseShardResult(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  EXPECT_EQ(parsed->index, 2);
  ASSERT_EQ(parsed->incidents.size(), 2u);
  const Incident& roundtrip = parsed->incidents[0];
  EXPECT_EQ(roundtrip.detector, Detector::kHarness);
  EXPECT_EQ(roundtrip.summary, incident.summary);
  EXPECT_EQ(roundtrip.details, incident.details);
  EXPECT_EQ(roundtrip.table_id, 0xFFFFFFFFu);
  EXPECT_EQ(roundtrip.shard, 2);
  EXPECT_EQ(roundtrip.layer, sut::SutLayer::kHarness);
  EXPECT_EQ(roundtrip.replay_trace, incident.replay_trace);
  // The fingerprint — the merge identity — survives the wire.
  EXPECT_EQ(IncidentFingerprint(roundtrip), IncidentFingerprint(incident));
  EXPECT_EQ(parsed->incidents[1].detector, Detector::kSymbolic);
  EXPECT_EQ(parsed->incidents[1].layer, sut::SutLayer::kAsic);

  EXPECT_EQ(parsed->fuzzed_updates, 412);
  EXPECT_EQ(parsed->packets_tested, 37);
  EXPECT_EQ(parsed->generation.targets_total, 40);
  EXPECT_EQ(parsed->generation.targets_covered, 37);
  EXPECT_EQ(parsed->generation.targets_infeasible, 3);
  EXPECT_EQ(parsed->generation.solver_queries, 41);
  EXPECT_TRUE(parsed->generation.cache_hit);

  EXPECT_EQ(parsed->metrics.updates_sent, 412u);
  EXPECT_EQ(parsed->metrics.oracle_findings, 2u);
  EXPECT_EQ(parsed->metrics.switch_writes, 99u);
  EXPECT_EQ(parsed->metrics.worker_retries, 1u);
  EXPECT_EQ(parsed->metrics.oracle_ns, 123456789u);
  EXPECT_EQ(parsed->metrics.oracle_hist.count, 2u);
  EXPECT_EQ(parsed->metrics.oracle_hist.sum_ns, 1500u + 3000000u);
  EXPECT_EQ(parsed->metrics.oracle_hist.counts,
            result.metrics.oracle_hist.counts);
  EXPECT_EQ(parsed->metrics.switch_write_hist.count, 1u);
  // wall_seconds is worker-local and deliberately not on the wire.
  EXPECT_EQ(parsed->metrics.wall_seconds, 0.0);

  ASSERT_EQ(parsed->spans.size(), 1u);
  EXPECT_EQ(parsed->spans[0].name, span.name);
  EXPECT_EQ(parsed->spans[0].category, span.category);
  EXPECT_EQ(parsed->spans[0].shard, 2);
  EXPECT_EQ(parsed->spans[0].seq, 7u);
  EXPECT_EQ(parsed->spans[0].parent_seq, 3u);
  EXPECT_EQ(parsed->spans[0].start_ns, span.start_ns);
  EXPECT_EQ(parsed->spans[0].duration_ns, 42u);
  EXPECT_EQ(parsed->spans[0].args, span.args);
}

// ---------------------------------------------------------------------------
// Rejection: truncated and garbage payloads produce a clear status, never a
// crash. A worker can die mid-write, so every prefix of a valid line must
// be handled.
// ---------------------------------------------------------------------------

TEST(ShardIoRejectionTest, EveryTruncationOfAValidSpecIsRejected) {
  WireShardSpec spec = ControlPlaneSpec();
  spec.has_packets = true;
  symbolic::TestPacket packet;
  packet.bytes = "\xab\xcd";
  spec.packets.push_back(packet);
  const std::string line = SerializeShardSpec(spec);
  ASSERT_TRUE(ParseShardSpec(line).ok());
  for (std::size_t len = 0; len < line.size(); ++len) {
    const StatusOr<WireShardSpec> parsed =
        ParseShardSpec(std::string_view(line).substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "prefix of length " << len << " accepted";
  }
}

TEST(ShardIoRejectionTest, EveryTruncationOfAValidResultIsRejected) {
  WireShardResult result;
  result.index = 1;
  Incident incident{Detector::kFuzzer, "entry 17 missing", "details"};
  result.incidents.push_back(incident);
  result.metrics = Metrics().Snapshot(0);
  const std::string line = SerializeShardResult(result);
  ASSERT_TRUE(ParseShardResult(line).ok());
  for (std::size_t len = 0; len < line.size(); ++len) {
    const StatusOr<WireShardResult> parsed =
        ParseShardResult(std::string_view(line).substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "prefix of length " << len << " accepted";
  }
}

TEST(ShardIoRejectionTest, GarbagePayloadsAreRejectedWithClearStatus) {
  const std::string_view garbage[] = {
      "",
      "not json at all",
      "{}",
      "null",
      "[1,2,3]",
      R"({"switchv_shard_spec":"one"})",
      R"({"wrong_tag":1})",
      "{\"switchv_shard_spec\":1,\"kind\":\"warp-drive\"}",
      "\"just a string\"",
      "{\"switchv_shard_spec\":1",  // unterminated object
      "{\"a\":\"unterminated string",
      "{\"a\":1e999}",  // number out of double range
  };
  for (const std::string_view payload : garbage) {
    const StatusOr<WireShardSpec> spec = ParseShardSpec(payload);
    EXPECT_FALSE(spec.ok()) << "accepted: " << payload;
    EXPECT_FALSE(spec.status().message().empty());
    EXPECT_FALSE(ParseShardResult(payload).ok());
  }
}

TEST(ShardIoRejectionTest, DeeplyNestedGarbageHitsTheDepthLimitCleanly) {
  const std::string bomb(10000, '[');
  EXPECT_FALSE(ParseShardSpec(bomb).ok());
  const std::string object_bomb = [] {
    std::string s;
    for (int i = 0; i < 10000; ++i) s += "{\"a\":";
    return s;
  }();
  EXPECT_FALSE(ParseShardSpec(object_bomb).ok());
}

TEST(ShardIoRejectionTest, UnknownVersionAndOutOfRangeEnumsAreRejected) {
  const std::string line = SerializeShardSpec(ControlPlaneSpec());
  // Version bump: a mixed-version fleet must fail loudly.
  std::string wrong_version = line;
  const std::string tag = "\"switchv_shard_spec\":1";
  wrong_version.replace(wrong_version.find(tag), tag.size(),
                        "\"switchv_shard_spec\":99");
  const StatusOr<WireShardSpec> version = ParseShardSpec(wrong_version);
  ASSERT_FALSE(version.ok());
  EXPECT_NE(version.status().message().find("version"), std::string::npos);

  // Fault ids are bounds-checked against the catalog.
  std::string bad_fault = line;
  const std::string faults = "\"faults\":[";
  bad_fault.replace(bad_fault.find(faults), faults.size(),
                    "\"faults\":[9999,");
  const StatusOr<WireShardSpec> fault = ParseShardSpec(bad_fault);
  ASSERT_FALSE(fault.ok());
  EXPECT_NE(fault.status().message().find("fault"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Worker process runner
// ---------------------------------------------------------------------------

TEST(WorkerProcessTest, EchoBinaryRoundTripsStdinToStdout) {
  // /bin/cat is the identity worker: payload in, payload out, exit 0.
  const WorkerProcessResult result =
      RunWorkerProcess("/bin/cat", {}, "hello shard protocol\n",
                       /*timeout_seconds=*/30);
  EXPECT_EQ(result.outcome, WorkerProcessResult::Outcome::kExited);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.stdout_data, "hello shard protocol\n");
}

TEST(WorkerProcessTest, LargePayloadDoesNotDeadlockThePipes) {
  // Larger than any pipe buffer in both directions: the runner must
  // interleave writing stdin with draining stdout.
  const std::string payload(4 * 1024 * 1024, 'x');
  const WorkerProcessResult result =
      RunWorkerProcess("/bin/cat", {}, payload, /*timeout_seconds=*/60);
  EXPECT_EQ(result.outcome, WorkerProcessResult::Outcome::kExited);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.stdout_data.size(), payload.size());
}

TEST(WorkerProcessTest, MissingBinaryReportsExecFailure) {
  const WorkerProcessResult result = RunWorkerProcess(
      "/nonexistent/switchv_worker", {}, "", /*timeout_seconds=*/30);
  EXPECT_EQ(result.outcome, WorkerProcessResult::Outcome::kExited);
  EXPECT_EQ(result.exit_code, 127);
}

TEST(WorkerProcessTest, HungWorkerIsKilledAtTheDeadline) {
  const auto start = std::chrono::steady_clock::now();
  const WorkerProcessResult result =
      RunWorkerProcess("/bin/sleep", {"30"}, "", /*timeout_seconds=*/0.5);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(result.outcome, WorkerProcessResult::Outcome::kTimedOut);
  EXPECT_LT(elapsed, 15.0) << "runner must not wait for the full sleep";
}

}  // namespace
}  // namespace switchv
