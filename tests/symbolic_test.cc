#include <gtest/gtest.h>

#include "bmv2/interpreter.h"
#include "models/entry_gen.h"
#include "models/sai_model.h"
#include "p4runtime/entry_builder.h"
#include "symbolic/packet_gen.h"

namespace switchv::symbolic {
namespace {

using models::BuildSaiProgram;
using models::Role;
using p4rt::EntryBuilder;

BitString U(uint128 v, int w) { return BitString::FromUint(v, w); }

// The minimal entry chain from the bmv2 tests: routes 10.0.0.0/24 via
// nexthop 1 out of port 5, with a /32 drop shadow at 10.0.0.7.
std::vector<p4rt::TableEntry> RoutingChain(const p4ir::P4Info& info) {
  std::vector<p4rt::TableEntry> entries;
  auto push = [&](StatusOr<p4rt::TableEntry> e) {
    EXPECT_TRUE(e.ok()) << e.status();
    entries.push_back(std::move(e).value());
  };
  push(EntryBuilder(info, "l3_admit_tbl").Priority(1).Action("l3_admit")
           .Build());
  push(EntryBuilder(info, "acl_pre_ingress_tbl")
           .Priority(1)
           .Action("set_vrf", {{"vrf_id", U(1, models::kVrfWidth)}})
           .Build());
  push(EntryBuilder(info, "vrf_tbl")
           .Exact("vrf_id", U(1, models::kVrfWidth))
           .Action("no_action")
           .Build());
  push(EntryBuilder(info, "ipv4_tbl")
           .Exact("vrf_id", U(1, models::kVrfWidth))
           .Lpm("ipv4_dst", U(0x0A000000, 32), 24)
           .Action("set_nexthop_id", {{"nexthop_id", U(1, 16)}})
           .Build());
  push(EntryBuilder(info, "ipv4_tbl")
           .Exact("vrf_id", U(1, models::kVrfWidth))
           .Lpm("ipv4_dst", U(0x0A000007, 32), 32)
           .Action("drop_packet")
           .Build());
  push(EntryBuilder(info, "nexthop_tbl")
           .Exact("nexthop_id", U(1, 16))
           .Action("set_nexthop", {{"router_interface_id", U(1, 16)},
                                   {"neighbor_id", U(1, 16)}})
           .Build());
  push(EntryBuilder(info, "neighbor_tbl")
           .Exact("router_interface_id", U(1, 16))
           .Exact("neighbor_id", U(1, 16))
           .Action("set_dst_mac", {{"dst_mac", U(0x0400000000AAull, 48)}})
           .Build());
  push(EntryBuilder(info, "router_interface_tbl")
           .Exact("router_interface_id", U(1, 16))
           .Action("set_port_and_src_mac",
                   {{"port", U(5, p4ir::kPortWidth)},
                    {"src_mac", U(0x020000000001ull, 48)}})
           .Build());
  return entries;
}

class SymbolicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto program = BuildSaiProgram(Role::kMiddleblock);
    ASSERT_TRUE(program.ok()) << program.status();
    program_ = std::move(program).value();
    info_ = p4ir::P4Info::FromProgram(program_);
  }
  p4ir::Program program_;
  p4ir::P4Info info_;
};

// The paper's §5 worked example: generating a packet that matches the /24
// route requires the solver to *negate* the higher-priority /32 entry.
TEST_F(SymbolicTest, LpmShadowingRequiresNegation) {
  const auto entries = RoutingChain(info_);
  SymbolicExecutor executor(program_, models::SaiParserSpec());
  ASSERT_TRUE(executor.Execute(entries).ok());

  // ipv4_tbl entries: index 0 is the /24, index 1 the /32 shadow.
  auto guard24 = executor.TargetGuard("ipv4_tbl.entry[0]");
  auto guard32 = executor.TargetGuard("ipv4_tbl.entry[1]");
  ASSERT_TRUE(guard24.ok() && guard32.ok());

  auto packet24 = executor.SolvePacket(*guard24, "ipv4_tbl.entry[0]");
  ASSERT_TRUE(packet24.ok()) << packet24.status();
  auto packet32 = executor.SolvePacket(*guard32, "ipv4_tbl.entry[1]");
  ASSERT_TRUE(packet32.ok()) << packet32.status();

  // The /24 packet's destination must be inside 10.0.0.0/24 but NOT the
  // shadowed host 10.0.0.7 — the solver had to negate the longer prefix
  // (the last conjunct of T[i1] in the paper's example).
  const auto parsed24 = packet::Parse(program_, models::SaiParserSpec(),
                                      packet24->bytes);
  const std::uint64_t dst24 =
      parsed24.fields.at("ipv4.dst_addr").ToUint64();
  EXPECT_EQ(dst24 & 0xFFFFFF00u, 0x0A000000u);
  EXPECT_NE(dst24, 0x0A000007u)
      << "solver failed to avoid the higher-priority /32";
  // The /32 packet's destination is exactly 10.0.0.7 and drops.
  const auto parsed32 = packet::Parse(program_, models::SaiParserSpec(),
                                      packet32->bytes);
  EXPECT_EQ(parsed32.fields.at("ipv4.dst_addr").ToUint64(), 0x0A000007u);
  bmv2::Interpreter reference(program_, models::SaiParserSpec());
  ASSERT_TRUE(reference.InstallEntries(entries).ok());
  auto outcome32 =
      reference.Run(packet32->bytes, packet32->ingress_port, 0);
  ASSERT_TRUE(outcome32.ok());
  EXPECT_TRUE(outcome32->dropped);

  // A custom goal pinning the forwarding path end-to-end: match the /24,
  // survive the TTL trap, egress on port 5.
  z3::context& ctx = executor.ctx();
  const z3::expr forwarded_goal =
      *guard24 &&
      executor.OutputField(p4ir::kDropField) == ctx.bv_val(0, 1) &&
      executor.OutputField(p4ir::kEgressPortField) ==
          ctx.bv_val(5, p4ir::kPortWidth);
  auto forwarded = executor.SolvePacket(forwarded_goal, "fwd24");
  ASSERT_TRUE(forwarded.ok()) << forwarded.status();
  auto outcome_fwd =
      reference.Run(forwarded->bytes, forwarded->ingress_port, 0);
  ASSERT_TRUE(outcome_fwd.ok());
  EXPECT_FALSE(outcome_fwd->dropped);
  EXPECT_EQ(outcome_fwd->egress_port, 5);
}

TEST_F(SymbolicTest, GeneratedPacketsAreWellFormed) {
  const auto entries = RoutingChain(info_);
  auto packets = GeneratePackets(program_, models::SaiParserSpec(), entries,
                                 CoverageMode::kEntryCoverage);
  ASSERT_TRUE(packets.ok()) << packets.status();
  ASSERT_FALSE(packets->empty());
  for (const TestPacket& packet : *packets) {
    // Every packet parses back consistently (parser well-formedness).
    const auto parsed = packet::Parse(program_, models::SaiParserSpec(),
                                      packet.bytes);
    EXPECT_TRUE(parsed.valid_headers.contains("ethernet")) << packet.target_id;
    EXPECT_GE(packet.ingress_port, 1);
    EXPECT_LE(packet.ingress_port, 32);
  }
}

TEST_F(SymbolicTest, EntryCoverageHitsEveryReachableEntry) {
  const auto entries = RoutingChain(info_);
  GenerationStats stats;
  auto packets = GeneratePackets(program_, models::SaiParserSpec(), entries,
                                 CoverageMode::kEntryCoverage, nullptr,
                                 &stats);
  ASSERT_TRUE(packets.ok()) << packets.status();
  // Targets = one per installed entry + one miss per table + the built-in
  // boundary-value assertions.
  const int tables = static_cast<int>(program_.tables.size());
  EXPECT_GE(stats.targets_total, static_cast<int>(entries.size()) + tables);
  EXPECT_LE(stats.targets_total,
            static_cast<int>(entries.size()) + tables + 8);
  // Run each packet through the reference and record which entries from
  // our chain it actually exercises.
  bmv2::Interpreter reference(program_, models::SaiParserSpec());
  ASSERT_TRUE(reference.InstallEntries(entries).ok());
  int routed = 0;
  int dropped = 0;
  for (const TestPacket& packet : *packets) {
    auto outcome = reference.Run(packet.bytes, packet.ingress_port, 0);
    ASSERT_TRUE(outcome.ok());
    if (outcome->dropped) {
      ++dropped;
    } else {
      ++routed;
    }
  }
  EXPECT_GT(routed, 0);
  EXPECT_GT(dropped, 0);
  EXPECT_GT(stats.targets_covered, static_cast<int>(entries.size()) / 2);
}

TEST_F(SymbolicTest, BranchCoverageAddsConditionalTargets) {
  const auto entries = RoutingChain(info_);
  GenerationStats entry_stats;
  auto entry_packets =
      GeneratePackets(program_, models::SaiParserSpec(), entries,
                      CoverageMode::kEntryCoverage, nullptr, &entry_stats);
  GenerationStats branch_stats;
  auto branch_packets = GeneratePackets(
      program_, models::SaiParserSpec(), entries,
      CoverageMode::kBranchAndEntryCoverage, nullptr, &branch_stats);
  ASSERT_TRUE(entry_packets.ok() && branch_packets.ok());
  EXPECT_GT(branch_stats.targets_total, entry_stats.targets_total);
}

TEST_F(SymbolicTest, CacheSkipsSolverOnUnchangedInputs) {
  const auto entries = RoutingChain(info_);
  PacketCache cache;
  GenerationStats cold;
  auto first = GeneratePackets(program_, models::SaiParserSpec(), entries,
                               CoverageMode::kEntryCoverage, &cache, &cold);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_GT(cold.solver_queries, 0);

  GenerationStats warm;
  auto second = GeneratePackets(program_, models::SaiParserSpec(), entries,
                                CoverageMode::kEntryCoverage, &cache, &warm);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.solver_queries, 0);
  ASSERT_EQ(first->size(), second->size());

  // Changing an entry invalidates the cache.
  auto changed = entries;
  changed.pop_back();
  GenerationStats retry;
  auto third = GeneratePackets(program_, models::SaiParserSpec(), changed,
                               CoverageMode::kEntryCoverage, &cache, &retry);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(retry.cache_hit);
}

TEST_F(SymbolicTest, InfeasibleTargetsReported) {
  // vrf 2 route without pre-ingress assigning vrf 2: unreachable.
  std::vector<p4rt::TableEntry> entries = RoutingChain(info_);
  auto vrf2 = EntryBuilder(info_, "vrf_tbl")
                  .Exact("vrf_id", U(2, models::kVrfWidth))
                  .Action("no_action")
                  .Build();
  auto route2 = EntryBuilder(info_, "ipv4_tbl")
                    .Exact("vrf_id", U(2, models::kVrfWidth))
                    .Lpm("ipv4_dst", U(0x0B000000, 32), 24)
                    .Action("drop_packet")
                    .Build();
  ASSERT_TRUE(vrf2.ok() && route2.ok());
  entries.push_back(*vrf2);
  entries.push_back(*route2);
  GenerationStats stats;
  auto packets = GeneratePackets(program_, models::SaiParserSpec(), entries,
                                 CoverageMode::kEntryCoverage, nullptr,
                                 &stats);
  ASSERT_TRUE(packets.ok());
  EXPECT_GT(stats.targets_infeasible, 0);
}

TEST_F(SymbolicTest, CustomAssertionOverInputsAndOutputs) {
  const auto entries = RoutingChain(info_);
  SymbolicExecutor executor(program_, models::SaiParserSpec());
  ASSERT_TRUE(executor.Execute(entries).ok());
  // Engineer-style custom goal (§5 "Coverage Constraints"): a forwarded
  // (not dropped) IPv4 packet whose TTL is exactly 9 on output — meaning
  // input TTL 10 through the decrementing rewrite.
  z3::context& ctx = executor.ctx();
  const z3::expr goal =
      executor.OutputField(p4ir::kDropField) == ctx.bv_val(0, 1) &&
      executor.InputValid("ipv4") &&
      executor.OutputField("ipv4.ttl") == ctx.bv_val(9, 8);
  auto packet = executor.SolvePacket(goal, "custom");
  ASSERT_TRUE(packet.ok()) << packet.status();
  const auto parsed = packet::Parse(program_, models::SaiParserSpec(),
                                    packet->bytes);
  EXPECT_EQ(parsed.fields.at("ipv4.ttl").ToUint64(), 10u);
}

TEST_F(SymbolicTest, WcmpMembersAreAllReachable) {
  std::vector<p4rt::TableEntry> entries = RoutingChain(info_);
  auto push = [&](StatusOr<p4rt::TableEntry> e) {
    ASSERT_TRUE(e.ok()) << e.status();
    entries.push_back(std::move(e).value());
  };
  push(EntryBuilder(info_, "wcmp_group_tbl")
           .Exact("wcmp_group_id", U(1, 16))
           .WeightedAction("set_nexthop_id", 1, {{"nexthop_id", U(1, 16)}})
           .WeightedAction("set_nexthop_id", 3, {{"nexthop_id", U(1, 16)}})
           .Build());
  push(EntryBuilder(info_, "ipv4_tbl")
           .Exact("vrf_id", U(1, models::kVrfWidth))
           .Lpm("ipv4_dst", U(0x0A010000, 32), 24)
           .Action("set_wcmp_group_id", {{"wcmp_group_id", U(1, 16)}})
           .Build());
  SymbolicExecutor executor(program_, models::SaiParserSpec());
  ASSERT_TRUE(executor.Execute(entries).ok());
  auto guard = executor.TargetGuard("wcmp_group_tbl.entry[0]");
  ASSERT_TRUE(guard.ok());
  auto packet = executor.SolvePacket(*guard, "wcmp");
  ASSERT_TRUE(packet.ok()) << packet.status();
}

TEST_F(SymbolicTest, ScaledWorkloadEntryCoverage) {
  // A scaled-down production-like workload (the full Inst1 run lives in
  // bench/table3_symbolic_perf, matching the paper's multi-minute numbers):
  // generation must succeed end to end and cover a large majority of
  // entries (some are legitimately shadowed or unreachable).
  models::WorkloadSpec spec = models::WorkloadSpec::Inst1();
  spec.num_ipv4_routes = 40;
  spec.num_ipv6_routes = 16;
  spec.num_pre_ingress = 8;
  spec.num_acl_ingress = 8;
  spec.num_nexthops = 12;
  spec.num_neighbors = 8;
  auto entries =
      models::GenerateEntries(info_, Role::kMiddleblock, spec, 5);
  ASSERT_TRUE(entries.ok());
  GenerationStats stats;
  auto packets = GeneratePackets(program_, models::SaiParserSpec(), *entries,
                                 CoverageMode::kEntryCoverage, nullptr,
                                 &stats);
  ASSERT_TRUE(packets.ok()) << packets.status();
  EXPECT_GE(stats.targets_total,
            static_cast<int>(entries->size()) +
                static_cast<int>(program_.tables.size()));
  // Unreferenced WCMP groups/nexthops/neighbors and shadowed routes are
  // legitimately unreachable; the paper's goal is "every *reachable* entry".
  EXPECT_GT(stats.targets_covered, stats.targets_total * 6 / 10);
  EXPECT_EQ(stats.targets_covered + stats.targets_infeasible,
            stats.targets_total);
}

}  // namespace
}  // namespace switchv::symbolic
