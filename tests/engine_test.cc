// Campaign-engine tests: determinism across parallelism levels, shard
// isolation of fault-registry views, incident fingerprint dedup, telemetry
// consistency, and in-process/subprocess execution conformance.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <set>
#include <sstream>

#include "switchv/experiment.h"
#include "switchv/fleet.h"

// Baked in by tests/CMakeLists.txt; the subprocess tests are skipped when
// the worker binary is unavailable (e.g. a hand-rolled compile).
#ifndef SWITCHV_SHARD_WORKER_PATH
#define SWITCHV_SHARD_WORKER_PATH ""
#endif
#ifndef SWITCHV_WORKER_HOST_PATH
#define SWITCHV_WORKER_HOST_PATH ""
#endif

namespace switchv {
namespace {

// One model + replay state shared by every test in this file (building the
// SAI program and workload is comparatively expensive).
class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto model = models::BuildSaiProgram(models::Role::kMiddleblock);
    ASSERT_TRUE(model.ok()) << model.status();
    model_ = new p4ir::Program(*std::move(model));
    const p4ir::P4Info info = p4ir::P4Info::FromProgram(*model_);
    auto entries =
        models::GenerateEntries(info, models::Role::kMiddleblock,
                                ExperimentOptions::SmallWorkload(), /*seed=*/2);
    ASSERT_TRUE(entries.ok()) << entries.status();
    entries_ = new std::vector<p4rt::TableEntry>(*std::move(entries));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete entries_;
    model_ = nullptr;
    entries_ = nullptr;
  }

  // A short sharded campaign; tests toggle phases and parallelism.
  static CampaignOptions FastCampaign() {
    CampaignOptions options;
    options.seed = 7;
    options.control_plane_shards = 4;
    options.dataplane_shards = 2;
    options.control_plane.num_requests = 12;
    options.control_plane.updates_per_request = 40;
    options.dataplane.packet_out_ports = 2;
    return options;
  }

  static CampaignReport Run(const sut::FaultRegistry* faults,
                            const CampaignOptions& options) {
    return RunValidationCampaign(faults, *model_, models::SaiParserSpec(),
                                 *entries_, options);
  }

  // The recipe matching the fixture's model and entries exactly: shard
  // workers rebuild the same scenario from it.
  static ShardScenario Scenario() {
    ShardScenario scenario;
    scenario.role = models::Role::kMiddleblock;
    scenario.workload = ExperimentOptions::SmallWorkload();
    scenario.entry_seed = 2;
    return scenario;
  }

  static CampaignOptions SubprocessCampaign() {
    CampaignOptions options = FastCampaign();
    options.execution = CampaignOptions::Execution::kSubprocess;
    options.worker_binary = SWITCHV_SHARD_WORKER_PATH;
    options.scenario = Scenario();
    return options;
  }

  static p4ir::Program* model_;
  static std::vector<p4rt::TableEntry>* entries_;
};

p4ir::Program* EngineTest::model_ = nullptr;
std::vector<p4rt::TableEntry>* EngineTest::entries_ = nullptr;

// ---------------------------------------------------------------------------
// Determinism: `parallelism` must not change the campaign's findings — the
// deduped fingerprint set, the per-group occurrence counts, and the shards
// that saw each group are bit-identical for 1 worker and 4.
// ---------------------------------------------------------------------------

TEST_F(EngineTest, ParallelismDoesNotChangeFindings) {
  sut::FaultRegistry faults;
  faults.Activate(sut::Fault::kDeleteNonExistingFailsBatch);
  symbolic::PacketCache cache;

  CampaignOptions options = FastCampaign();
  options.dataplane.cache = &cache;  // second run skips Z3
  options.parallelism = 1;
  const CampaignReport sequential = Run(&faults, options);
  options.parallelism = 4;
  const CampaignReport parallel = Run(&faults, options);

  EXPECT_TRUE(sequential.bug_detected());
  EXPECT_EQ(sequential.FingerprintSet(), parallel.FingerprintSet());
  ASSERT_EQ(sequential.groups.size(), parallel.groups.size());
  for (std::size_t i = 0; i < sequential.groups.size(); ++i) {
    SCOPED_TRACE(sequential.groups[i].exemplar.summary);
    EXPECT_EQ(sequential.groups[i].fingerprint, parallel.groups[i].fingerprint);
    EXPECT_EQ(sequential.groups[i].occurrences, parallel.groups[i].occurrences);
    EXPECT_EQ(sequential.groups[i].shards, parallel.groups[i].shards);
  }
  EXPECT_EQ(sequential.fuzzed_updates, parallel.fuzzed_updates);
  EXPECT_EQ(sequential.packets_tested, parallel.packets_tested);
  EXPECT_EQ(sequential.metrics.updates_sent, parallel.metrics.updates_sent);
}

TEST_F(EngineTest, HealthyCampaignStaysClean) {
  CampaignOptions options = FastCampaign();
  options.parallelism = 4;
  const CampaignReport report = Run(nullptr, options);
  for (const IncidentGroup& group : report.groups) {
    ADD_FAILURE() << DetectorName(group.exemplar.detector) << ": "
                  << group.exemplar.summary;
  }
  EXPECT_FALSE(report.bug_detected());
  EXPECT_EQ(report.shards_run, 6);  // 4 control + 2 dataplane
  EXPECT_GT(report.fuzzed_updates, 100);
  EXPECT_GT(report.packets_tested, 20);
}

// ---------------------------------------------------------------------------
// Shard isolation: a fault injected into one shard's registry view is
// attributed to that shard and no other.
// ---------------------------------------------------------------------------

TEST_F(EngineTest, FaultInOneShardViewIsAttributedToThatShardOnly) {
  sut::FaultRegistry faulty;
  faulty.Activate(sut::Fault::kDeleteNonExistingFailsBatch);

  CampaignOptions options = FastCampaign();
  options.run_dataplane = false;  // control-plane fault; keep the run short
  options.parallelism = 4;
  options.shard_faults[1] = &faulty;  // control shard 1 of 0..3
  const CampaignReport report = Run(nullptr, options);

  EXPECT_TRUE(report.bug_detected());
  for (const IncidentGroup& group : report.groups) {
    EXPECT_EQ(group.shards, std::vector<int>{1})
        << group.exemplar.summary << " attributed to a healthy shard";
    EXPECT_EQ(group.exemplar.shard, 1);
  }
}

// ---------------------------------------------------------------------------
// Incident pipeline: repeats of one divergence class collapse into a single
// group that carries the occurrence count.
// ---------------------------------------------------------------------------

TEST_F(EngineTest, RepeatedIncidentsDedupIntoGroupsWithCounts) {
  sut::FaultRegistry faults;
  faults.Activate(sut::Fault::kDeleteNonExistingFailsBatch);

  CampaignOptions options = FastCampaign();
  options.run_dataplane = false;
  options.parallelism = 4;
  const CampaignReport report = Run(&faults, options);

  ASSERT_TRUE(report.bug_detected());
  int raised = 0;
  for (const IncidentGroup& group : report.groups) {
    raised += group.occurrences;
    EXPECT_GE(group.occurrences, 1);
    EXPECT_FALSE(group.shards.empty());
  }
  // Every shard fuzzes deletes, so the same divergence class recurs across
  // shards but appears once in the report.
  EXPECT_GT(raised, static_cast<int>(report.groups.size()));
  EXPECT_EQ(report.metrics.incidents_raised,
            static_cast<std::uint64_t>(raised));
  EXPECT_EQ(report.metrics.incidents_unique, report.groups.size());
}

TEST(IncidentFingerprintTest, SummaryShapeCollapsesVariableParts) {
  EXPECT_EQ(IncidentSummaryShape("entry 17 missing"),
            IncidentSummaryShape("entry 23 missing"));
  EXPECT_EQ(IncidentSummaryShape("payload 0xdead beef"),
            IncidentSummaryShape("payload 0xf00d beef"));
  EXPECT_NE(IncidentSummaryShape("entry accepted"),
            IncidentSummaryShape("entry rejected"));

  Incident a{Detector::kFuzzer, "entry 17 missing", "details A"};
  Incident b{Detector::kFuzzer, "entry 23 missing", "details B"};
  b.shard = 3;
  EXPECT_EQ(IncidentFingerprint(a), IncidentFingerprint(b));
  // Same divergence on another table (or seen by another detector) is
  // another bug.
  Incident c = a;
  c.table_id = 42;
  EXPECT_NE(IncidentFingerprint(a), IncidentFingerprint(c));
  Incident d = a;
  d.detector = Detector::kSymbolic;
  EXPECT_NE(IncidentFingerprint(a), IncidentFingerprint(d));
}

// ---------------------------------------------------------------------------
// Telemetry: the shared metrics sink sums correctly across shards.
// ---------------------------------------------------------------------------

TEST_F(EngineTest, MetricsSumAcrossShards) {
  CampaignOptions options = FastCampaign();
  options.parallelism = 2;
  const CampaignReport report = Run(nullptr, options);

  const MetricsSnapshot& metrics = report.metrics;
  EXPECT_EQ(metrics.shards_completed,
            static_cast<std::uint64_t>(report.shards_run));
  EXPECT_EQ(metrics.updates_sent,
            static_cast<std::uint64_t>(report.fuzzed_updates));
  EXPECT_EQ(metrics.requests_sent,
            static_cast<std::uint64_t>(options.control_plane.num_requests));
  EXPECT_EQ(metrics.packets_tested,
            static_cast<std::uint64_t>(report.packets_tested));
  EXPECT_EQ(metrics.incidents_raised, 0u);
  EXPECT_EQ(metrics.incidents_unique, 0u);
  // Every shard owns a switch and drives it over P4Runtime.
  EXPECT_GT(metrics.switch_writes, 0u);
  EXPECT_GT(metrics.switch_reads, 0u);
  EXPECT_GT(metrics.switch_packets_injected, 0u);
  // Phase timers observed the instrumented sections.
  EXPECT_GT(metrics.switch_write_ns, 0u);
  EXPECT_GT(metrics.oracle_ns, 0u);
  EXPECT_GT(metrics.reference_ns, 0u);
  EXPECT_GT(metrics.wall_seconds, 0.0);
  EXPECT_GT(metrics.updates_per_second(), 0.0);
  // The human-readable block mentions the headline rates.
  const std::string text = metrics.ToString();
  EXPECT_NE(text.find("updates/s"), std::string::npos);
  EXPECT_NE(text.find("packets"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Execution conformance: a fixed-seed campaign yields the identical report
// whether shards run on worker threads or in worker processes — same
// fingerprints, same group counts, same merged (count-based) telemetry.
// Timing-based fields (wall clock, phase ns, histogram sums) are excluded:
// only their count structure is deterministic.
// ---------------------------------------------------------------------------

TEST_F(EngineTest, SubprocessExecutionMatchesInProcessByteForByte) {
  sut::FaultRegistry faults;
  faults.Activate(sut::Fault::kDeleteNonExistingFailsBatch);

  CampaignOptions options = FastCampaign();
  options.parallelism = 2;
  const CampaignReport in_process = Run(&faults, options);

  CampaignOptions sub = SubprocessCampaign();
  sub.parallelism = 2;
  Tracer tracer;
  sub.tracer = &tracer;
  const CampaignReport subprocess = Run(&faults, sub);

  // No worker was lost: the harness stayed out of the findings.
  EXPECT_EQ(subprocess.metrics.shards_lost, 0u);
  EXPECT_EQ(subprocess.metrics.worker_crashes, 0u);
  EXPECT_EQ(subprocess.metrics.worker_timeouts, 0u);

  ASSERT_TRUE(in_process.bug_detected());
  EXPECT_EQ(in_process.FingerprintSet(), subprocess.FingerprintSet());
  ASSERT_EQ(in_process.groups.size(), subprocess.groups.size());
  for (std::size_t i = 0; i < in_process.groups.size(); ++i) {
    SCOPED_TRACE(in_process.groups[i].exemplar.summary);
    EXPECT_EQ(in_process.groups[i].fingerprint,
              subprocess.groups[i].fingerprint);
    EXPECT_EQ(in_process.groups[i].occurrences,
              subprocess.groups[i].occurrences);
    EXPECT_EQ(in_process.groups[i].shards, subprocess.groups[i].shards);
    EXPECT_EQ(in_process.groups[i].exemplar.summary,
              subprocess.groups[i].exemplar.summary);
    EXPECT_EQ(in_process.groups[i].exemplar.shard,
              subprocess.groups[i].exemplar.shard);
    EXPECT_EQ(in_process.groups[i].exemplar.layer,
              subprocess.groups[i].exemplar.layer);
  }
  EXPECT_EQ(in_process.shards_run, subprocess.shards_run);
  EXPECT_EQ(in_process.fuzzed_updates, subprocess.fuzzed_updates);
  EXPECT_EQ(in_process.packets_tested, subprocess.packets_tested);
  EXPECT_EQ(in_process.generation.targets_total,
            subprocess.generation.targets_total);
  EXPECT_EQ(in_process.generation.targets_covered,
            subprocess.generation.targets_covered);

  // Count-based metrics merge exactly across the process boundary.
  const MetricsSnapshot& a = in_process.metrics;
  const MetricsSnapshot& b = subprocess.metrics;
  EXPECT_EQ(a.shards_completed, b.shards_completed);
  EXPECT_EQ(a.updates_sent, b.updates_sent);
  EXPECT_EQ(a.requests_sent, b.requests_sent);
  EXPECT_EQ(a.generated_valid, b.generated_valid);
  EXPECT_EQ(a.generated_invalid, b.generated_invalid);
  EXPECT_EQ(a.oracle_findings, b.oracle_findings);
  EXPECT_EQ(a.packets_tested, b.packets_tested);
  EXPECT_EQ(a.solver_queries, b.solver_queries);
  EXPECT_EQ(a.switch_writes, b.switch_writes);
  EXPECT_EQ(a.switch_reads, b.switch_reads);
  EXPECT_EQ(a.switch_packets_injected, b.switch_packets_injected);
  EXPECT_EQ(a.incidents_raised, b.incidents_raised);
  EXPECT_EQ(a.incidents_unique, b.incidents_unique);
  // Merged histogram totals: the same observations were recorded, so the
  // observation counts match (latencies land in run-dependent buckets).
  EXPECT_EQ(a.switch_write_hist.count, b.switch_write_hist.count);
  EXPECT_EQ(a.oracle_hist.count, b.oracle_hist.count);
  EXPECT_EQ(a.reference_hist.count, b.reference_hist.count);
  EXPECT_EQ(a.generation_hist.count, b.generation_hist.count);

  // Worker spans came back over the wire into the campaign tracer: every
  // shard contributed, under its own shard id.
  std::set<int> span_shards;
  for (const TraceSpan& span : tracer.Spans()) span_shards.insert(span.shard);
  for (int shard = 0; shard < subprocess.shards_run; ++shard) {
    EXPECT_TRUE(span_shards.contains(shard))
        << "no spans shipped back for shard " << shard;
  }
}

// ---------------------------------------------------------------------------
// Crash isolation: a worker killed mid-shard loses that shard — and only
// that shard. The campaign completes, retries up to the bound, counts the
// loss in Metrics, and synthesizes a layer-attributed harness incident that
// cannot merge with model-bug dedup classes.
// ---------------------------------------------------------------------------

TEST_F(EngineTest, CrashedWorkerLosesOneShardNotTheCampaign) {
  CampaignOptions options = SubprocessCampaign();
  options.run_dataplane = false;
  options.control_plane_shards = 2;
  options.shard_retries = 1;
  options.worker_extra_args = {"--abort-on-shard=1"};
  const CampaignReport report = Run(nullptr, options);

  EXPECT_EQ(report.shards_run, 2);
  EXPECT_EQ(report.metrics.shards_completed, 2u);
  EXPECT_EQ(report.metrics.shards_lost, 1u);
  EXPECT_EQ(report.metrics.worker_crashes, 2u);  // initial attempt + 1 retry
  EXPECT_EQ(report.metrics.worker_retries, 1u);
  EXPECT_EQ(report.metrics.worker_timeouts, 0u);
  // Shard 0's worker ran to completion and its results merged.
  EXPECT_GT(report.fuzzed_updates, 0);

  ASSERT_EQ(report.groups.size(), 1u);
  const IncidentGroup& group = report.groups.front();
  EXPECT_EQ(group.exemplar.detector, Detector::kHarness);
  EXPECT_EQ(group.exemplar.layer, sut::SutLayer::kHarness);
  EXPECT_EQ(group.shards, std::vector<int>{1});
  EXPECT_EQ(group.occurrences, 1);
  EXPECT_NE(group.exemplar.summary.find("crashed"), std::string::npos)
      << group.exemplar.summary;
  EXPECT_NE(group.exemplar.details.find("attempt 2"), std::string::npos)
      << group.exemplar.details;
}

TEST_F(EngineTest, HungWorkerIsKilledAndCountedAsTimeout) {
  CampaignOptions options = SubprocessCampaign();
  options.run_dataplane = false;
  options.control_plane_shards = 2;
  // Keep the healthy shard comfortably under the deadline; the hang fires
  // before any real work, so only the stuck worker pays the full wait.
  options.control_plane.num_requests = 4;
  options.control_plane.updates_per_request = 10;
  options.shard_timeout_seconds = 10;
  options.shard_retries = 0;
  options.worker_extra_args = {"--hang-on-shard=0"};
  const CampaignReport report = Run(nullptr, options);

  EXPECT_EQ(report.metrics.shards_lost, 1u);
  EXPECT_EQ(report.metrics.worker_timeouts, 1u);
  EXPECT_EQ(report.metrics.worker_retries, 0u);
  EXPECT_EQ(report.metrics.worker_crashes, 0u);
  EXPECT_GT(report.fuzzed_updates, 0);  // the other shard completed

  ASSERT_EQ(report.groups.size(), 1u);
  const IncidentGroup& group = report.groups.front();
  EXPECT_EQ(group.exemplar.detector, Detector::kHarness);
  EXPECT_EQ(group.exemplar.layer, sut::SutLayer::kHarness);
  EXPECT_EQ(group.shards, std::vector<int>{0});
  EXPECT_NE(group.exemplar.summary.find("timed out"), std::string::npos)
      << group.exemplar.summary;
}

// ---------------------------------------------------------------------------
// Remote execution (switchv/shard_transport.h): shards dispatched over TCP
// to `switchv_worker_host` daemons on loopback. These tests carry the
// `remote` ctest label (tests/CMakeLists.txt) so `ctest -L remote` runs
// the transport conformance suite alone, e.g. under ASan.
// ---------------------------------------------------------------------------

// Launches a switchv_worker_host on an ephemeral loopback port, parses the
// endpoint it announces on stdout, and SIGKILLs + reaps it on destruction.
class WorkerHost {
 public:
  explicit WorkerHost(std::vector<std::string> extra_flags = {}) {
    int out[2] = {-1, -1};
    if (::pipe(out) != 0) return;
    std::vector<std::string> args = {
        SWITCHV_WORKER_HOST_PATH,
        "--port=0",
        "--bind=127.0.0.1",
        std::string("--worker=") + SWITCHV_SHARD_WORKER_PATH,
        "--heartbeat-interval=0.2",
    };
    for (std::string& flag : extra_flags) args.push_back(std::move(flag));
    std::vector<char*> argv;
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(out[1], STDOUT_FILENO);
      ::close(out[0]);
      ::close(out[1]);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    ::close(out[1]);
    if (pid_ > 0) {
      // The endpoint announcement is the host's first stdout line.
      std::string line;
      char c = 0;
      while (::read(out[0], &c, 1) == 1 && c != '\n') line.push_back(c);
      const std::string_view marker = "listening on ";
      const std::size_t at = line.find(marker);
      if (at != std::string::npos) {
        endpoint_ = line.substr(at + marker.size());
      }
    }
    ::close(out[0]);
  }
  ~WorkerHost() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
    }
  }
  WorkerHost(const WorkerHost&) = delete;
  WorkerHost& operator=(const WorkerHost&) = delete;

  bool ok() const { return !endpoint_.empty(); }
  const std::string& endpoint() const { return endpoint_; }

 private:
  pid_t pid_ = -1;
  std::string endpoint_;
};

// The deterministic projection of a campaign report, rendered to bytes:
// every group in merge order with its full exemplar (summary, details,
// replay trace, layer, shard), occurrence counts, and the count-based
// telemetry. "Byte-identical across execution substrates" is asserted by
// comparing these strings; timing-valued fields (wall clock, phase ns,
// bucket placement) are the only exclusions — their *counts* are included.
std::string RenderReport(const CampaignReport& report) {
  std::ostringstream out;
  out << "shards=" << report.shards_run
      << " fuzzed=" << report.fuzzed_updates
      << " packets=" << report.packets_tested
      << " targets=" << report.generation.targets_covered << "/"
      << report.generation.targets_total
      << " queries=" << report.generation.solver_queries << "\n";
  for (const IncidentGroup& group : report.groups) {
    out << "group " << group.fingerprint << " x" << group.occurrences
        << " shards=[";
    for (const int shard : group.shards) out << shard << ",";
    out << "] detector=" << DetectorName(group.exemplar.detector)
        << " layer=" << sut::SutLayerName(group.exemplar.layer)
        << " shard=" << group.exemplar.shard << "\n"
        << "summary: " << group.exemplar.summary << "\n"
        << "details: " << group.exemplar.details << "\n"
        << group.exemplar.replay_trace << "\n";
  }
  const MetricsSnapshot& m = report.metrics;
  out << "counts " << m.shards_completed << " " << m.updates_sent << " "
      << m.requests_sent << " " << m.generated_valid << " "
      << m.generated_invalid << " " << m.oracle_findings << " "
      << m.packets_tested << " " << m.solver_queries << " "
      << m.switch_writes << " " << m.switch_reads << " "
      << m.switch_packets_injected << " " << m.incidents_raised << " "
      << m.incidents_unique << "\n";
  out << "hists " << m.switch_write_hist.count << " " << m.oracle_hist.count
      << " " << m.reference_hist.count << " " << m.generation_hist.count
      << "\n";
  return out.str();
}

class RemoteExecutionTest : public EngineTest {
 protected:
  static CampaignOptions RemoteCampaign(
      const std::vector<std::string>& endpoints) {
    CampaignOptions options = FastCampaign();
    options.execution = CampaignOptions::Execution::kRemote;
    options.remote_endpoints = endpoints;
    options.scenario = Scenario();
    options.parallelism = 2;
    return options;
  }
};

// The acceptance invariant: one fixed-seed campaign, three substrates, one
// report. The remote run spans a two-host loopback pool in which BOTH
// hosts drop the connection (once) when asked for shard 2 — the dispatcher
// must reconnect-and-resend through the idempotent result cache without
// any of it showing in the merged report.
TEST_F(RemoteExecutionTest, ReportByteIdenticalAcrossAllSubstrates) {
  sut::FaultRegistry faults;
  faults.Activate(sut::Fault::kDeleteNonExistingFailsBatch);

  CampaignOptions local = FastCampaign();
  local.parallelism = 2;
  const CampaignReport in_process = Run(&faults, local);

  CampaignOptions sub = SubprocessCampaign();
  sub.parallelism = 2;
  const CampaignReport subprocess = Run(&faults, sub);

  WorkerHost host_a({"--drop-once-on-shard=2"});
  WorkerHost host_b({"--drop-once-on-shard=2"});
  ASSERT_TRUE(host_a.ok() && host_b.ok())
      << "worker hosts failed to start";
  Tracer tracer;
  CampaignOptions remote_options =
      RemoteCampaign({host_a.endpoint(), host_b.endpoint()});
  remote_options.tracer = &tracer;
  const CampaignReport remote = Run(&faults, remote_options);

  // The injected drop was exercised and fully absorbed by the transport:
  // redials happened, no shard was lost, no worker failed.
  EXPECT_GE(remote.metrics.remote_reconnects, 1u);
  EXPECT_EQ(remote.metrics.shards_lost, 0u);
  EXPECT_EQ(remote.metrics.worker_crashes, 0u);
  EXPECT_EQ(remote.metrics.worker_timeouts, 0u);
  EXPECT_EQ(remote.metrics.hosts_retired, 0u);

  ASSERT_TRUE(in_process.bug_detected());
  EXPECT_EQ(RenderReport(in_process), RenderReport(subprocess));
  EXPECT_EQ(RenderReport(in_process), RenderReport(remote));

  // Worker spans crossed the wire: every shard contributed under its id.
  std::set<int> span_shards;
  for (const TraceSpan& span : tracer.Spans()) span_shards.insert(span.shard);
  for (int shard = 0; shard < remote.shards_run; ++shard) {
    EXPECT_TRUE(span_shards.contains(shard))
        << "no spans shipped back for shard " << shard;
  }
}

// Slow-host retirement: a pool with one live host and one dead endpoint
// (nothing listens on port 1) completes the campaign with the identical
// report; the dead endpoint is retired after its consecutive transport
// failures and counted in telemetry.
TEST_F(RemoteExecutionTest, DeadEndpointIsRetiredAndCampaignCompletes) {
  sut::FaultRegistry faults;
  faults.Activate(sut::Fault::kDeleteNonExistingFailsBatch);

  CampaignOptions local = FastCampaign();
  local.parallelism = 2;
  const CampaignReport in_process = Run(&faults, local);

  WorkerHost host;
  ASSERT_TRUE(host.ok()) << "worker host failed to start";
  CampaignOptions options =
      RemoteCampaign({host.endpoint(), "127.0.0.1:1"});
  options.remote_host_max_failures = 1;
  const CampaignReport remote = Run(&faults, options);

  EXPECT_EQ(remote.metrics.hosts_retired, 1u);
  EXPECT_EQ(remote.metrics.shards_lost, 0u);
  EXPECT_EQ(RenderReport(in_process), RenderReport(remote));
}

// Probation regression: retirement is no longer permanent. A retired host
// sits out its cooldown (no acquires land on it), then gets exactly one
// probe shard; a failed probe re-retires it with a fresh cooldown (and no
// new retirement count), a successful probe re-admits it to the rotation.
// Driven through the injectable-time API — no sleeping, no sockets.
TEST_F(RemoteExecutionTest, RetiredHostRejoinsAfterCooldownProbation) {
  using Clock = HostPool::Clock;
  const Clock::time_point t0 = Clock::now();
  const auto at = [&](double seconds) {
    return t0 + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(seconds));
  };

  HostPool::Options pool_options;
  pool_options.max_consecutive_failures = 1;
  pool_options.probation_cooldown_seconds = 5;
  HostPool pool({"hostA:1", "hostB:1"}, pool_options);

  // One transport failure retires the host.
  const int flaky = pool.AcquireAt(at(0));
  ASSERT_GE(flaky, 0);
  HostPool::ReleaseOutcome out =
      pool.ReleaseAt(flaky, /*transport_ok=*/false, at(0.1));
  EXPECT_TRUE(out.newly_retired);
  EXPECT_EQ(out.endpoint, pool.endpoint(flaky));
  EXPECT_EQ(pool.retired_count(), 1u);

  // During the cooldown every acquire lands on the other host.
  const int live_a = pool.AcquireAt(at(1));
  const int live_b = pool.AcquireAt(at(4.9));
  EXPECT_NE(live_a, flaky);
  EXPECT_NE(live_b, flaky);
  pool.ReleaseAt(live_a, /*transport_ok=*/true, at(4.95));
  pool.ReleaseAt(live_b, /*transport_ok=*/true, at(4.95));

  // After the cooldown: exactly one probe shard — a concurrent acquire
  // while the probe is in flight still goes to the live host.
  const int probe = pool.AcquireAt(at(5.2));
  EXPECT_EQ(probe, flaky);
  const int concurrent = pool.AcquireAt(at(5.3));
  EXPECT_NE(concurrent, flaky);
  pool.ReleaseAt(concurrent, /*transport_ok=*/true, at(5.4));

  // A failed probe re-retires with a *fresh* cooldown; the retirement
  // count does not move (this is not a new live->retired transition).
  out = pool.ReleaseAt(probe, /*transport_ok=*/false, at(5.5));
  EXPECT_FALSE(out.newly_retired);
  EXPECT_EQ(pool.retired_count(), 1u);
  EXPECT_EQ(pool.probe_readmissions(), 0u);
  EXPECT_NE(pool.AcquireAt(at(10.0)), flaky);  // 5.5 + 5 has not elapsed

  // The next probe succeeds and re-admits the host to normal rotation.
  const int reprobe = pool.AcquireAt(at(10.6));
  EXPECT_EQ(reprobe, flaky);
  out = pool.ReleaseAt(reprobe, /*transport_ok=*/true, at(10.7));
  EXPECT_FALSE(out.newly_retired);
  EXPECT_EQ(pool.probe_readmissions(), 1u);
  EXPECT_EQ(pool.retired_count(), 1u);
  EXPECT_EQ(pool.AcquireAt(at(11)), flaky);  // idle again, least-loaded
}

// A non-positive cooldown restores the pre-probation contract: retirement
// is permanent.
TEST_F(RemoteExecutionTest, NonPositiveCooldownMakesRetirementPermanent) {
  using Clock = HostPool::Clock;
  const Clock::time_point t0 = Clock::now();
  HostPool::Options pool_options;
  pool_options.max_consecutive_failures = 1;
  pool_options.probation_cooldown_seconds = 0;
  HostPool pool({"hostA:1"}, pool_options);

  const int only = pool.AcquireAt(t0);
  ASSERT_GE(only, 0);
  const HostPool::ReleaseOutcome out =
      pool.ReleaseAt(only, /*transport_ok=*/false, t0 + std::chrono::seconds(1));
  EXPECT_TRUE(out.newly_retired);
  EXPECT_EQ(pool.AcquireAt(t0 + std::chrono::hours(1)), -1);
}

// A fleet that is entirely unreachable degrades to the synthetic-harness
// incident path — lost shards, never a crashed or hanging campaign.
TEST_F(RemoteExecutionTest, AllHostsDownDegradesToHarnessIncidents) {
  CampaignOptions options = RemoteCampaign({"127.0.0.1:1"});
  options.run_dataplane = false;
  options.control_plane_shards = 2;
  options.remote_host_max_failures = 1;
  options.shard_retries = 0;
  const CampaignReport report = Run(nullptr, options);

  EXPECT_EQ(report.shards_run, 2);
  EXPECT_EQ(report.metrics.shards_completed, 2u);
  EXPECT_EQ(report.metrics.shards_lost, 2u);
  ASSERT_EQ(report.groups.size(), 1u);  // same summary shape: one class
  const IncidentGroup& group = report.groups.front();
  EXPECT_EQ(group.exemplar.detector, Detector::kHarness);
  EXPECT_EQ(group.exemplar.layer, sut::SutLayer::kHarness);
  EXPECT_EQ(group.occurrences, 2);
}

// A harness incident and a detector incident occupy disjoint fingerprint
// classes even with identical text: losing workers can never mask (or merge
// into) a model bug.
TEST(HarnessIncidentTest, HarnessDetectorFingerprintsSeparately) {
  Incident detector_finding{Detector::kFuzzer, "shard 1 lost: worker crashed",
                            ""};
  Incident harness_finding{Detector::kHarness, "shard 1 lost: worker crashed",
                           ""};
  harness_finding.layer = sut::SutLayer::kHarness;
  EXPECT_NE(IncidentFingerprint(detector_finding),
            IncidentFingerprint(harness_finding));
}

}  // namespace
}  // namespace switchv
