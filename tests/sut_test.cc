#include <gtest/gtest.h>

#include "bmv2/interpreter.h"
#include "models/entry_gen.h"
#include "models/sai_model.h"
#include "models/test_packets.h"
#include "p4runtime/entry_builder.h"
#include "sut/bug_catalog.h"
#include "sut/lpm_trie.h"
#include "sut/switch_stack.h"
#include "util/rng.h"

namespace switchv::sut {
namespace {

using models::BuildSaiProgram;
using models::Role;
using p4rt::EntryBuilder;

BitString U(uint128 v, int w) { return BitString::FromUint(v, w); }

TEST(LpmTrie, LongestPrefixWins) {
  LpmTrie<int> trie(32);
  trie.Insert(0x0A000000, 8, 1);
  trie.Insert(0x0A010000, 16, 2);
  trie.Insert(0x0A010200, 24, 3);
  EXPECT_EQ(*trie.Lookup(0x0A010203), 3);
  EXPECT_EQ(*trie.Lookup(0x0A01FF00), 2);
  EXPECT_EQ(*trie.Lookup(0x0AFF0000), 1);
  EXPECT_EQ(trie.Lookup(0x0B000000), nullptr);
}

TEST(LpmTrie, DefaultRouteAndHostRoute) {
  LpmTrie<int> trie(32);
  trie.Insert(0, 0, 42);  // default route
  trie.Insert(0x0A000001, 32, 7);
  EXPECT_EQ(*trie.Lookup(0x0A000001), 7);
  EXPECT_EQ(*trie.Lookup(0xDEADBEEF), 42);
}

TEST(LpmTrie, RemoveRestoresShorterPrefix) {
  LpmTrie<int> trie(32);
  trie.Insert(0x0A000000, 8, 1);
  trie.Insert(0x0A000000, 24, 2);
  EXPECT_EQ(*trie.Lookup(0x0A000005), 2);
  EXPECT_TRUE(trie.Remove(0x0A000000, 24));
  EXPECT_EQ(*trie.Lookup(0x0A000005), 1);
  EXPECT_FALSE(trie.Remove(0x0A000000, 24));
  EXPECT_EQ(trie.size(), 1);
}

TEST(LpmTrie, Ipv6Width) {
  LpmTrie<int> trie(128);
  const uint128 base = static_cast<uint128>(0x20010db8u) << 96;
  trie.Insert(base, 32, 1);
  trie.Insert(base | (static_cast<uint128>(1) << 64), 64, 2);
  EXPECT_EQ(*trie.Lookup(base | (static_cast<uint128>(1) << 64) | 99), 2);
  EXPECT_EQ(*trie.Lookup(base | 99), 1);
}

TEST(BugCatalogTest, CoversBothStacksAndAllComponents) {
  int pins = 0;
  int cerberus = 0;
  std::set<Component> components;
  for (const BugInfo& bug : BugCatalog()) {
    (bug.stack == Stack::kPins ? pins : cerberus)++;
    components.insert(bug.component);
    EXPECT_EQ(FindBug(bug.fault), &bug);
  }
  EXPECT_GE(pins, 25);
  EXPECT_GE(cerberus, 7);
  // Every Table-1 component bucket is represented.
  for (Component c :
       {Component::kP4RuntimeServer, Component::kGnmi,
        Component::kOrchestrationAgent, Component::kSyncdBinary,
        Component::kSwitchLinux, Component::kHardware,
        Component::kP4Toolchain, Component::kInputP4Program,
        Component::kSwitchSoftware, Component::kBmv2Simulator}) {
    EXPECT_TRUE(components.contains(c)) << ComponentName(c);
  }
}

TEST(BugCatalogTest, ResolutionShapeMatchesPaper) {
  // Figure 7 / §6.1: the majority of PINS bugs resolved within 14 days,
  // about a third within 5 days, and a few unresolved.
  int pins_total = 0;
  int within_14 = 0;
  int within_5 = 0;
  int unresolved = 0;
  for (const BugInfo& bug : BugCatalog()) {
    if (bug.stack != Stack::kPins) continue;
    ++pins_total;
    if (bug.days_to_resolution < 0) {
      ++unresolved;
      continue;
    }
    if (bug.days_to_resolution <= 14) ++within_14;
    if (bug.days_to_resolution <= 5) ++within_5;
  }
  EXPECT_GT(within_14 * 2, pins_total);           // majority <= 14 days
  EXPECT_GT(within_5 * 4, pins_total);            // roughly a third <= 5
  EXPECT_GE(unresolved, 1);
}

// ---------------------------------------------------------------------------
// Differential property: a healthy switch agrees with the reference
// simulator on every packet, across the full production-like workload.
// This is the core soundness property of the whole setup: with no faults,
// SwitchV must find nothing.
// ---------------------------------------------------------------------------

class DifferentialTest : public ::testing::TestWithParam<Role> {};

TEST_P(DifferentialTest, HealthySwitchMatchesReference) {
  const Role role = GetParam();
  auto program = BuildSaiProgram(role);
  ASSERT_TRUE(program.ok()) << program.status();
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(*program);
  const models::WorkloadSpec spec = role == Role::kMiddleblock
                                        ? models::WorkloadSpec::Inst1()
                                        : models::WorkloadSpec::Inst2();
  auto entries = models::GenerateEntries(info, role, spec, /*seed=*/11);
  ASSERT_TRUE(entries.ok()) << entries.status();

  SwitchUnderTest sut(nullptr, models::DefaultCloneSessions(),
                      models::kCpuPort);
  ASSERT_TRUE(sut.SetForwardingPipelineConfig(info).ok());
  p4rt::WriteRequest request;
  for (const p4rt::TableEntry& entry : *entries) {
    request.updates.push_back(
        p4rt::Update{p4rt::UpdateType::kInsert, entry});
  }
  const p4rt::WriteResponse response = sut.Write(request);
  for (std::size_t i = 0; i < response.statuses.size(); ++i) {
    ASSERT_TRUE(response.statuses[i].ok())
        << "insert " << i << " ("
        << request.updates[i].entry.ToString(&info)
        << "): " << response.statuses[i];
  }

  bmv2::Interpreter reference(*program, models::SaiParserSpec(),
                              models::DefaultCloneSessions());
  ASSERT_TRUE(reference.InstallEntries(*entries).ok());

  // A spread of packets: routed, unrouted, low TTL, broadcast, ACL hits,
  // IPv6, ARP — across several ingress ports.
  Rng rng(99);
  int checked = 0;
  for (int i = 0; i < 300; ++i) {
    std::string bytes;
    if (i % 7 == 6) {
      models::Ipv6PacketSpec spec6;
      const uint128 base = static_cast<uint128>(0x20010db8u) << 96;
      spec6.dst_ip = base | (rng.Bits(80).value());
      bytes = models::BuildIpv6Packet(*program, spec6);
    } else if (i % 11 == 10) {
      bytes = models::BuildArpPacket(*program);
    } else {
      models::Ipv4PacketSpec spec4;
      spec4.dst_ip = (10u << 24) |
                     static_cast<std::uint32_t>(rng.Uniform(0, 1 << 24));
      if (i % 5 == 0) spec4.dst_ip = 0xFFFFFFFF;
      if (i % 13 == 0) spec4.ttl = static_cast<int>(rng.Uniform(0, 2));
      if (i % 3 == 0) spec4.protocol = 17;
      if (i % 17 == 0) {
        spec4.protocol = 1;  // ICMP echo (hits acl_copy entries)
      }
      spec4.dst_port = i % 2 == 0 ? 179 : 443;
      bytes = models::BuildIpv4Packet(*program, spec4);
    }
    const auto port =
        static_cast<std::uint16_t>(rng.Uniform(1, models::kNumFrontPanelPorts));
    const packet::ForwardingOutcome observed = sut.InjectPacket(bytes, port);
    auto behaviors = reference.EnumerateBehaviors(bytes, port);
    ASSERT_TRUE(behaviors.ok()) << behaviors.status();
    bool admissible = false;
    for (const packet::ForwardingOutcome& expected : *behaviors) {
      if (expected == observed) admissible = true;
    }
    EXPECT_TRUE(admissible)
        << "packet " << i << " on port " << port << "\n observed: "
        << observed.Canonical() << "\n expected one of "
        << behaviors->size() << " behaviors, first: "
        << (*behaviors)[0].Canonical();
    if (admissible) ++checked;
  }
  EXPECT_EQ(checked, 300);
}

INSTANTIATE_TEST_SUITE_P(Roles, DifferentialTest,
                         ::testing::Values(Role::kMiddleblock, Role::kWan),
                         [](const auto& param) {
                           return std::string(RoleName(param.param));
                         });

// ---------------------------------------------------------------------------
// Targeted fault behaviour tests.
// ---------------------------------------------------------------------------

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto program = BuildSaiProgram(Role::kMiddleblock);
    ASSERT_TRUE(program.ok());
    program_ = std::move(program).value();
    info_ = p4ir::P4Info::FromProgram(program_);
  }

  std::unique_ptr<SwitchUnderTest> MakeSut() {
    auto sut = std::make_unique<SwitchUnderTest>(
        &faults_, models::DefaultCloneSessions(), models::kCpuPort);
    EXPECT_TRUE(sut->SetForwardingPipelineConfig(info_).ok());
    return sut;
  }

  p4rt::TableEntry Vrf(int v) {
    auto entry = EntryBuilder(info_, "vrf_tbl")
                     .Exact("vrf_id", U(v, models::kVrfWidth))
                     .Action("no_action")
                     .Build();
    EXPECT_TRUE(entry.ok());
    return *entry;
  }

  static p4rt::WriteRequest Inserts(std::vector<p4rt::TableEntry> entries) {
    p4rt::WriteRequest request;
    for (auto& e : entries) {
      request.updates.push_back(
          p4rt::Update{p4rt::UpdateType::kInsert, std::move(e)});
    }
    return request;
  }

  FaultRegistry faults_;
  p4ir::Program program_;
  p4ir::P4Info info_;
};

TEST_F(FaultTest, HealthyInsertAndDelete) {
  auto sut = MakeSut();
  auto response = sut->Write(Inserts({Vrf(1)}));
  EXPECT_TRUE(response.all_ok());
  p4rt::WriteRequest del;
  del.updates.push_back(p4rt::Update{p4rt::UpdateType::kDelete, Vrf(1)});
  EXPECT_TRUE(sut->Write(del).all_ok());
}

TEST_F(FaultTest, DuplicateInsertIsAlreadyExists) {
  auto sut = MakeSut();
  EXPECT_TRUE(sut->Write(Inserts({Vrf(1)})).all_ok());
  auto response = sut->Write(Inserts({Vrf(1)}));
  EXPECT_EQ(response.statuses[0].code(), StatusCode::kAlreadyExists);
}

TEST_F(FaultTest, DuplicateEntryWrongCodeFault) {
  faults_.Activate(Fault::kDuplicateEntryWrongCode);
  auto sut = MakeSut();
  EXPECT_TRUE(sut->Write(Inserts({Vrf(1)})).all_ok());
  auto response = sut->Write(Inserts({Vrf(1)}));
  EXPECT_EQ(response.statuses[0].code(), StatusCode::kInternal);
}

TEST_F(FaultTest, ReferentialIntegrityEnforced) {
  auto sut = MakeSut();
  // Route referencing VRF 1 before it exists: rejected.
  auto route = EntryBuilder(info_, "ipv4_tbl")
                   .Exact("vrf_id", U(1, models::kVrfWidth))
                   .Lpm("ipv4_dst", U(0x0A000000, 32), 24)
                   .Action("drop_packet")
                   .Build();
  ASSERT_TRUE(route.ok());
  auto response = sut->Write(Inserts({*route}));
  EXPECT_EQ(response.statuses[0].code(), StatusCode::kInvalidArgument);
  // After the VRF exists, the same insert succeeds.
  EXPECT_TRUE(sut->Write(Inserts({Vrf(1)})).all_ok());
  EXPECT_TRUE(sut->Write(Inserts({*route})).all_ok());
  // Deleting the referenced VRF while the route exists: rejected (in use).
  p4rt::WriteRequest del;
  del.updates.push_back(p4rt::Update{p4rt::UpdateType::kDelete, Vrf(1)});
  EXPECT_EQ(sut->Write(del).statuses[0].code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(FaultTest, DeleteNonExistingFailsBatchFault) {
  faults_.Activate(Fault::kDeleteNonExistingFailsBatch);
  auto sut = MakeSut();
  p4rt::WriteRequest request;
  request.updates.push_back(p4rt::Update{p4rt::UpdateType::kInsert, Vrf(1)});
  request.updates.push_back(p4rt::Update{p4rt::UpdateType::kDelete, Vrf(9)});
  auto response = sut->Write(request);
  // The whole batch aborts, including the valid insert.
  EXPECT_EQ(response.statuses[0].code(), StatusCode::kAborted);
  EXPECT_EQ(response.statuses[1].code(), StatusCode::kAborted);
  auto read = sut->Read(p4rt::ReadRequest{});
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->entries.empty());
}

TEST_F(FaultTest, P4InfoZeroByteIdsFailsConfigPush) {
  faults_.Activate(Fault::kP4InfoZeroByteIds);
  SwitchUnderTest sut(&faults_, models::DefaultCloneSessions(),
                      models::kCpuPort);
  EXPECT_EQ(sut.SetForwardingPipelineConfig(info_).code(),
            StatusCode::kInternal);
}

TEST_F(FaultTest, SwallowedConfigPushBreaksWrites) {
  faults_.Activate(Fault::kP4InfoPushFailureSwallowed);
  auto sut = MakeSut();  // push "succeeds"
  auto response = sut->Write(Inserts({Vrf(1)}));
  EXPECT_FALSE(response.all_ok());
}

TEST_F(FaultTest, ModifyKeepsOldParamsFault) {
  auto sut = MakeSut();
  auto rif = EntryBuilder(info_, "router_interface_tbl")
                 .Exact("router_interface_id", U(1, 16))
                 .Action("set_port_and_src_mac",
                         {{"port", U(5, 16)}, {"src_mac", U(0xAA, 48)}})
                 .Build();
  ASSERT_TRUE(rif.ok());
  ASSERT_TRUE(sut->Write(Inserts({*rif})).all_ok());
  auto modified = EntryBuilder(info_, "router_interface_tbl")
                      .Exact("router_interface_id", U(1, 16))
                      .Action("set_port_and_src_mac",
                              {{"port", U(9, 16)}, {"src_mac", U(0xBB, 48)}})
                      .Build();
  ASSERT_TRUE(modified.ok());
  p4rt::WriteRequest mod;
  mod.updates.push_back(p4rt::Update{p4rt::UpdateType::kModify, *modified});

  // With the fault active, the MODIFY is acknowledged but the read-back
  // still returns the old parameters.
  faults_.Activate(Fault::kModifyKeepsOldActionParams);
  ASSERT_TRUE(sut->Write(mod).all_ok());
  auto faulty_read = sut->Read(p4rt::ReadRequest{});
  ASSERT_TRUE(faulty_read.ok());
  EXPECT_EQ(faulty_read->entries[0], *rif);

  // Healthy behaviour: the new parameters stick.
  faults_.Deactivate(Fault::kModifyKeepsOldActionParams);
  ASSERT_TRUE(sut->Write(mod).all_ok());
  auto healthy_read = sut->Read(p4rt::ReadRequest{});
  ASSERT_TRUE(healthy_read.ok());
  EXPECT_EQ(healthy_read->entries[0], *modified);
}

TEST_F(FaultTest, ReadTernaryUnsupportedStripsFields) {
  faults_.Activate(Fault::kReadTernaryUnsupported);
  auto sut = MakeSut();
  auto acl = EntryBuilder(info_, "acl_ingress_tbl")
                 .Ternary("ether_type", U(0x0806, 16), BitString::AllOnes(16))
                 .Priority(1)
                 .Action("acl_trap")
                 .Build();
  ASSERT_TRUE(acl.ok());
  ASSERT_TRUE(sut->Write(Inserts({*acl})).all_ok());
  auto read = sut->Read(p4rt::ReadRequest{});
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->entries.size(), 1u);
  EXPECT_TRUE(read->entries[0].matches.empty());  // ternary field dropped
}

TEST_F(FaultTest, AclTableNameWrongCaseRejectsAclInserts) {
  faults_.Activate(Fault::kAclTableNameWrongCase);
  auto sut = MakeSut();
  auto acl = EntryBuilder(info_, "acl_ingress_tbl")
                 .Ternary("ether_type", U(0x0806, 16), BitString::AllOnes(16))
                 .Priority(1)
                 .Action("acl_trap")
                 .Build();
  ASSERT_TRUE(acl.ok());
  auto response = sut->Write(Inserts({*acl}));
  EXPECT_EQ(response.statuses[0].code(), StatusCode::kInternal);
  // Non-ACL tables unaffected.
  EXPECT_TRUE(sut->Write(Inserts({Vrf(1)})).all_ok());
}

TEST_F(FaultTest, ConstraintCheckSkippedAcceptsVrf0) {
  faults_.Activate(Fault::kConstraintCheckSkipped);
  auto sut = MakeSut();
  auto response = sut->Write(Inserts({Vrf(0)}));  // violates vrf_id != 0
  EXPECT_TRUE(response.all_ok());
}

TEST_F(FaultTest, PacketOutPuntedBackFault) {
  faults_.Activate(Fault::kPacketOutPuntedBack);
  auto sut = MakeSut();
  models::Ipv4PacketSpec spec;
  ASSERT_TRUE(sut->PacketOut(p4rt::PacketOut{
                              models::BuildIpv4Packet(program_, spec), 3,
                              false})
                  .ok());
  EXPECT_EQ(sut->DrainEgress().size(), 1u);
  EXPECT_EQ(sut->DrainPacketIns().size(), 1u);  // looped back
}

TEST_F(FaultTest, PortSyncRestartBreaksPacketIo) {
  faults_.Activate(Fault::kPortSyncDaemonRestart);
  auto sut = MakeSut();
  models::Ipv4PacketSpec spec;
  spec.ttl = 1;  // would normally punt via the TTL trap
  auto outcome =
      sut->InjectPacket(models::BuildIpv4Packet(program_, spec), 1);
  EXPECT_FALSE(outcome.punted);
  EXPECT_TRUE(sut->DrainPacketIns().empty());
}

TEST_F(FaultTest, GnmiConfigTreeSetAndGet) {
  auto sut = MakeSut();
  EXPECT_TRUE(sut->gnmi().Set("/system/config/hostname", "dut").ok());
  auto value = sut->gnmi().Get("/system/config/hostname");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "dut");
  EXPECT_EQ(sut->gnmi().Get("/no/such/path").status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(sut->gnmi().Set("relative/path", "x").ok());
}

TEST_F(FaultTest, GnmiPortSpeedBreaksPuntAfterReconfig) {
  faults_.Activate(Fault::kGnmiPortSpeedBreaksPunt);
  auto sut = MakeSut();
  models::Ipv4PacketSpec spec;
  spec.ttl = 1;  // punts via the TTL trap
  // Before any port-speed reconfiguration the punt path works.
  auto outcome =
      sut->InjectPacket(models::BuildIpv4Packet(program_, spec), 1);
  EXPECT_TRUE(outcome.punted);
  sut->DrainPacketIns();
  // The reconfiguration corrupts the punt path.
  ASSERT_TRUE(sut->ApplyStandardBringUpConfig().ok());
  outcome = sut->InjectPacket(models::BuildIpv4Packet(program_, spec), 1);
  EXPECT_FALSE(outcome.punted);
  EXPECT_TRUE(sut->DrainPacketIns().empty());
}

TEST_F(FaultTest, LldpDaemonInjectsPacketIns) {
  faults_.Activate(Fault::kLldpDaemonPunts);
  auto sut = MakeSut();
  sut->Tick();
  const auto packet_ins = sut->DrainPacketIns();
  ASSERT_EQ(packet_ins.size(), 1u);
  // LLDP ethertype 0x88CC at offset 12.
  EXPECT_EQ(static_cast<unsigned char>(packet_ins[0].payload[12]), 0x88);
  EXPECT_EQ(static_cast<unsigned char>(packet_ins[0].payload[13]), 0xCC);
}

TEST_F(FaultTest, VrfDeleteBrokenFault) {
  faults_.Activate(Fault::kVrfDeleteBroken);
  auto sut = MakeSut();
  ASSERT_TRUE(sut->Write(Inserts({Vrf(1)})).all_ok());
  p4rt::WriteRequest del;
  del.updates.push_back(p4rt::Update{p4rt::UpdateType::kDelete, Vrf(1)});
  EXPECT_EQ(sut->Write(del).statuses[0].code(), StatusCode::kInternal);
}

TEST_F(FaultTest, WcmpRejectsDuplicateActionsFault) {
  faults_.Activate(Fault::kWcmpRejectsDuplicateActions);
  auto sut = MakeSut();
  // Install the nexthop chain the group references.
  auto rif = EntryBuilder(info_, "router_interface_tbl")
                 .Exact("router_interface_id", U(1, 16))
                 .Action("set_port_and_src_mac",
                         {{"port", U(5, 16)}, {"src_mac", U(0xAA, 48)}})
                 .Build();
  auto neighbor = EntryBuilder(info_, "neighbor_tbl")
                      .Exact("router_interface_id", U(1, 16))
                      .Exact("neighbor_id", U(1, 16))
                      .Action("set_dst_mac", {{"dst_mac", U(0xBB, 48)}})
                      .Build();
  auto nexthop = EntryBuilder(info_, "nexthop_tbl")
                     .Exact("nexthop_id", U(1, 16))
                     .Action("set_nexthop", {{"router_interface_id", U(1, 16)},
                                             {"neighbor_id", U(1, 16)}})
                     .Build();
  ASSERT_TRUE(rif.ok() && neighbor.ok() && nexthop.ok());
  ASSERT_TRUE(sut->Write(Inserts({*rif, *neighbor, *nexthop})).all_ok());
  // A valid group whose two buckets use the same action: must be accepted
  // per the spec, but the faulty OA rejects it.
  auto group = EntryBuilder(info_, "wcmp_group_tbl")
                   .Exact("wcmp_group_id", U(1, 16))
                   .WeightedAction("set_nexthop_id", 1,
                                   {{"nexthop_id", U(1, 16)}})
                   .WeightedAction("set_nexthop_id", 1,
                                   {{"nexthop_id", U(1, 16)}})
                   .Build();
  ASSERT_TRUE(group.ok());
  auto response = sut->Write(Inserts({*group}));
  EXPECT_FALSE(response.all_ok());
}

TEST_F(FaultTest, CursedPortDropsPackets) {
  faults_.Activate(Fault::kCursedPortDropsPackets);
  auto sut = MakeSut();
  // Route to the cursed port (5) via rif 1.
  std::vector<p4rt::TableEntry> chain;
  auto push = [&](StatusOr<p4rt::TableEntry> e) {
    ASSERT_TRUE(e.ok()) << e.status();
    chain.push_back(std::move(e).value());
  };
  push(EntryBuilder(info_, "l3_admit_tbl").Priority(1).Action("l3_admit")
           .Build());
  push(Vrf(1));  // must precede the pre-ingress entry that references it
  push(EntryBuilder(info_, "acl_pre_ingress_tbl")
           .Priority(1)
           .Action("set_vrf", {{"vrf_id", U(1, models::kVrfWidth)}})
           .Build());
  push(EntryBuilder(info_, "router_interface_tbl")
           .Exact("router_interface_id", U(1, 16))
           .Action("set_port_and_src_mac",
                   {{"port", U(5, 16)}, {"src_mac", U(0xAA, 48)}})
           .Build());
  push(EntryBuilder(info_, "neighbor_tbl")
           .Exact("router_interface_id", U(1, 16))
           .Exact("neighbor_id", U(1, 16))
           .Action("set_dst_mac", {{"dst_mac", U(0xBB, 48)}})
           .Build());
  push(EntryBuilder(info_, "nexthop_tbl")
           .Exact("nexthop_id", U(1, 16))
           .Action("set_nexthop", {{"router_interface_id", U(1, 16)},
                                   {"neighbor_id", U(1, 16)}})
           .Build());
  push(EntryBuilder(info_, "ipv4_tbl")
           .Exact("vrf_id", U(1, models::kVrfWidth))
           .Lpm("ipv4_dst", U(0x0A000000, 32), 24)
           .Action("set_nexthop_id", {{"nexthop_id", U(1, 16)}})
           .Build());
  ASSERT_TRUE(sut->Write(Inserts(chain)).all_ok());
  models::Ipv4PacketSpec spec;
  spec.dst_ip = 0x0A000001;
  auto outcome =
      sut->InjectPacket(models::BuildIpv4Packet(program_, spec), 1);
  EXPECT_TRUE(outcome.dropped);  // interference on port 5
}

}  // namespace
}  // namespace switchv::sut
