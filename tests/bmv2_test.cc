#include <gtest/gtest.h>

#include "bmv2/interpreter.h"
#include "models/entry_gen.h"
#include "models/sai_model.h"
#include "models/test_packets.h"
#include "p4runtime/entry_builder.h"

namespace switchv::bmv2 {
namespace {

using models::BuildSaiProgram;
using models::Role;
using p4rt::EntryBuilder;

BitString U(uint128 v, int w) { return BitString::FromUint(v, w); }

class Bmv2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto program = BuildSaiProgram(Role::kMiddleblock);
    ASSERT_TRUE(program.ok()) << program.status();
    program_ = std::move(program).value();
    interpreter_ = std::make_unique<Interpreter>(
        program_, models::SaiParserSpec(), models::DefaultCloneSessions());
    info_ = p4ir::P4Info::FromProgram(program_);
  }

  // Installs the minimal chain to route 10.0.0.0/24 out of port 5:
  // admit-all, vrf 1 via pre-ingress, route -> nexthop 1 -> neighbor 1 ->
  // rif 1 (port 5).
  void InstallRoutingChain() {
    std::vector<p4rt::TableEntry> entries;
    auto push = [&](StatusOr<p4rt::TableEntry> e) {
      ASSERT_TRUE(e.ok()) << e.status();
      entries.push_back(std::move(e).value());
    };
    push(EntryBuilder(info_, "l3_admit_tbl")
             .Priority(1)
             .Action("l3_admit")
             .Build());
    push(EntryBuilder(info_, "acl_pre_ingress_tbl")
             .Priority(1)
             .Action("set_vrf", {{"vrf_id", U(1, models::kVrfWidth)}})
             .Build());
    push(EntryBuilder(info_, "vrf_tbl")
             .Exact("vrf_id", U(1, models::kVrfWidth))
             .Action("no_action")
             .Build());
    push(EntryBuilder(info_, "ipv4_tbl")
             .Exact("vrf_id", U(1, models::kVrfWidth))
             .Lpm("ipv4_dst", U(0x0A000000, 32), 24)
             .Action("set_nexthop_id", {{"nexthop_id", U(1, 16)}})
             .Build());
    push(EntryBuilder(info_, "nexthop_tbl")
             .Exact("nexthop_id", U(1, 16))
             .Action("set_nexthop", {{"router_interface_id", U(1, 16)},
                                     {"neighbor_id", U(1, 16)}})
             .Build());
    push(EntryBuilder(info_, "neighbor_tbl")
             .Exact("router_interface_id", U(1, 16))
             .Exact("neighbor_id", U(1, 16))
             .Action("set_dst_mac", {{"dst_mac", U(0x0400000000AAull, 48)}})
             .Build());
    push(EntryBuilder(info_, "router_interface_tbl")
             .Exact("router_interface_id", U(1, 16))
             .Action("set_port_and_src_mac",
                     {{"port", U(5, p4ir::kPortWidth)},
                      {"src_mac", U(0x020000000001ull, 48)}})
             .Build());
    extra_entries_ = entries;
    ASSERT_TRUE(interpreter_->InstallEntries(entries).ok());
  }

  void Reinstall(std::vector<p4rt::TableEntry> more) {
    std::vector<p4rt::TableEntry> all = extra_entries_;
    for (auto& e : more) all.push_back(std::move(e));
    ASSERT_TRUE(interpreter_->InstallEntries(all).ok());
  }

  p4ir::Program program_;
  p4ir::P4Info info_;
  std::unique_ptr<Interpreter> interpreter_;
  std::vector<p4rt::TableEntry> extra_entries_;
};

TEST_F(Bmv2Test, RoutesMatchingPacket) {
  InstallRoutingChain();
  models::Ipv4PacketSpec spec;
  spec.dst_ip = 0x0A000042;  // 10.0.0.66
  const std::string bytes = models::BuildIpv4Packet(program_, spec);
  auto outcome = interpreter_->Run(bytes, /*ingress_port=*/1, /*seed=*/0);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->dropped);
  EXPECT_EQ(outcome->egress_port, 5);
  // Rewrites applied: dst MAC from neighbor, src MAC from RIF, TTL - 1.
  const auto egress = packet::Parse(program_, models::SaiParserSpec(),
                                    outcome->packet_bytes);
  EXPECT_EQ(egress.fields.at("ethernet.dst_addr").ToUint64(),
            0x0400000000AAull);
  EXPECT_EQ(egress.fields.at("ethernet.src_addr").ToUint64(),
            0x020000000001ull);
  EXPECT_EQ(egress.fields.at("ipv4.ttl").ToUint64(), 63u);
}

TEST_F(Bmv2Test, UnroutedPacketDropsByDefault) {
  InstallRoutingChain();
  models::Ipv4PacketSpec spec;
  spec.dst_ip = 0x0B000001;  // 11.0.0.1 — no route
  auto outcome = interpreter_->Run(models::BuildIpv4Packet(program_, spec),
                                   1, 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->dropped);
}

TEST_F(Bmv2Test, LongestPrefixWins) {
  InstallRoutingChain();
  // Add a /32 sending 10.0.0.7 to a different nexthop chain (reuse rif 1
  // via nexthop 2? simplest: drop).
  auto more = EntryBuilder(info_, "ipv4_tbl")
                  .Exact("vrf_id", U(1, models::kVrfWidth))
                  .Lpm("ipv4_dst", U(0x0A000007, 32), 32)
                  .Action("drop_packet")
                  .Build();
  ASSERT_TRUE(more.ok());
  Reinstall({*more});
  models::Ipv4PacketSpec spec;
  spec.dst_ip = 0x0A000007;
  auto outcome = interpreter_->Run(models::BuildIpv4Packet(program_, spec),
                                   1, 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->dropped);  // /32 drop shadows the /24 route
  spec.dst_ip = 0x0A000008;
  outcome = interpreter_->Run(models::BuildIpv4Packet(program_, spec), 1, 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->dropped);
}

TEST_F(Bmv2Test, TtlTrapPuntsLowTtl) {
  InstallRoutingChain();
  models::Ipv4PacketSpec spec;
  spec.dst_ip = 0x0A000042;
  spec.ttl = 1;
  auto outcome = interpreter_->Run(models::BuildIpv4Packet(program_, spec),
                                   1, 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->dropped);
  EXPECT_TRUE(outcome->punted);
}

TEST_F(Bmv2Test, BroadcastDropped) {
  InstallRoutingChain();
  models::Ipv4PacketSpec spec;
  spec.dst_ip = 0xFFFFFFFF;
  auto outcome = interpreter_->Run(models::BuildIpv4Packet(program_, spec),
                                   1, 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->dropped);
  EXPECT_FALSE(outcome->punted);
}

TEST_F(Bmv2Test, AclPriorityOrdering) {
  InstallRoutingChain();
  // Low priority: drop all IPv4. High priority: trap TCP port 179.
  auto low = EntryBuilder(info_, "acl_ingress_tbl")
                 .Ternary("ether_type", U(0x0800, 16), BitString::AllOnes(16))
                 .Priority(1)
                 .Action("acl_drop")
                 .Build();
  auto high = EntryBuilder(info_, "acl_ingress_tbl")
                  .Ternary("ip_protocol", U(6, 8), BitString::AllOnes(8))
                  .Ternary("l4_dst_port", U(179, 16), BitString::AllOnes(16))
                  .Priority(10)
                  .Action("acl_trap")
                  .Build();
  ASSERT_TRUE(low.ok() && high.ok());
  Reinstall({*low, *high});
  models::Ipv4PacketSpec spec;
  spec.dst_ip = 0x0A000042;
  spec.dst_port = 179;
  auto outcome = interpreter_->Run(models::BuildIpv4Packet(program_, spec),
                                   1, 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->punted);  // high-priority trap wins
  spec.dst_port = 80;
  outcome = interpreter_->Run(models::BuildIpv4Packet(program_, spec), 1, 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->dropped);
  EXPECT_FALSE(outcome->punted);  // falls to the drop-all entry
}

TEST_F(Bmv2Test, MirrorClonesPacket) {
  InstallRoutingChain();
  auto mirror = EntryBuilder(info_, "acl_ingress_tbl")
                    .Ternary("ether_type", U(0x0800, 16),
                             BitString::AllOnes(16))
                    .Priority(3)
                    .Action("acl_mirror", {{"mirror_port", U(11, 16)}})
                    .Build();
  auto session = EntryBuilder(info_, "mirror_session_tbl")
                     .Exact("mirror_port", U(11, 16))
                     .Action("set_clone_session", {{"session_id", U(2, 16)}})
                     .Build();
  ASSERT_TRUE(mirror.ok() && session.ok());
  Reinstall({*mirror, *session});
  models::Ipv4PacketSpec spec;
  spec.dst_ip = 0x0A000042;
  auto outcome = interpreter_->Run(models::BuildIpv4Packet(program_, spec),
                                   1, 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->dropped);
  ASSERT_EQ(outcome->clones.size(), 1u);
  EXPECT_EQ(outcome->clones[0].first, 102);  // session 2 -> port 102
}

TEST_F(Bmv2Test, WcmpEnumeratesMemberBehaviors) {
  InstallRoutingChain();
  // Second nexthop chain via port 9.
  std::vector<p4rt::TableEntry> more;
  auto push = [&](StatusOr<p4rt::TableEntry> e) {
    ASSERT_TRUE(e.ok()) << e.status();
    more.push_back(std::move(e).value());
  };
  push(EntryBuilder(info_, "nexthop_tbl")
           .Exact("nexthop_id", U(2, 16))
           .Action("set_nexthop", {{"router_interface_id", U(2, 16)},
                                   {"neighbor_id", U(2, 16)}})
           .Build());
  push(EntryBuilder(info_, "neighbor_tbl")
           .Exact("router_interface_id", U(2, 16))
           .Exact("neighbor_id", U(2, 16))
           .Action("set_dst_mac", {{"dst_mac", U(0x0400000000BBull, 48)}})
           .Build());
  push(EntryBuilder(info_, "router_interface_tbl")
           .Exact("router_interface_id", U(2, 16))
           .Action("set_port_and_src_mac",
                   {{"port", U(9, p4ir::kPortWidth)},
                    {"src_mac", U(0x020000000002ull, 48)}})
           .Build());
  push(EntryBuilder(info_, "wcmp_group_tbl")
           .Exact("wcmp_group_id", U(1, 16))
           .WeightedAction("set_nexthop_id", 1, {{"nexthop_id", U(1, 16)}})
           .WeightedAction("set_nexthop_id", 2, {{"nexthop_id", U(2, 16)}})
           .Build());
  push(EntryBuilder(info_, "ipv4_tbl")
           .Exact("vrf_id", U(1, models::kVrfWidth))
           .Lpm("ipv4_dst", U(0x0A010000, 32), 24)
           .Action("set_wcmp_group_id", {{"wcmp_group_id", U(1, 16)}})
           .Build());
  Reinstall(std::move(more));

  models::Ipv4PacketSpec spec;
  spec.dst_ip = 0x0A010005;
  auto behaviors = interpreter_->EnumerateBehaviors(
      models::BuildIpv4Packet(program_, spec), 1);
  ASSERT_TRUE(behaviors.ok()) << behaviors.status();
  // Two members -> exactly two distinct behaviors (ports 5 and 9).
  ASSERT_EQ(behaviors->size(), 2u);
  std::set<std::uint16_t> ports;
  for (const auto& b : *behaviors) {
    EXPECT_FALSE(b.dropped);
    ports.insert(b.egress_port);
  }
  EXPECT_EQ(ports, (std::set<std::uint16_t>{5, 9}));
}

TEST_F(Bmv2Test, DeterministicPipelineHasSingleBehavior) {
  InstallRoutingChain();
  models::Ipv4PacketSpec spec;
  spec.dst_ip = 0x0A000042;
  auto behaviors = interpreter_->EnumerateBehaviors(
      models::BuildIpv4Packet(program_, spec), 1);
  ASSERT_TRUE(behaviors.ok());
  EXPECT_EQ(behaviors->size(), 1u);
}

TEST_F(Bmv2Test, NonIpPacketNotRouted) {
  InstallRoutingChain();
  auto outcome = interpreter_->Run(models::BuildArpPacket(program_), 1, 0);
  ASSERT_TRUE(outcome.ok());
  // No route chain applies; ARP reaches the default egress port 0... the
  // routing tables are guarded by ipv4/ipv6 validity, and nexthop_id stays
  // 0, so the packet egresses unmodified on port 0 (a front-panel flood is
  // out of scope for these models).
  EXPECT_FALSE(outcome->punted);
}

TEST_F(Bmv2Test, EgressRifRewritesSrcMac) {
  InstallRoutingChain();
  auto egress = EntryBuilder(info_, "egress_rif_tbl")
                    .Exact("out_port", U(5, p4ir::kPortWidth))
                    .Action("set_egress_src_mac",
                            {{"src_mac", U(0x02000000EEEEull, 48)}})
                    .Build();
  ASSERT_TRUE(egress.ok());
  Reinstall({*egress});
  models::Ipv4PacketSpec spec;
  spec.dst_ip = 0x0A000042;
  auto outcome = interpreter_->Run(models::BuildIpv4Packet(program_, spec),
                                   1, 0);
  ASSERT_TRUE(outcome.ok());
  const auto parsed = packet::Parse(program_, models::SaiParserSpec(),
                                    outcome->packet_bytes);
  EXPECT_EQ(parsed.fields.at("ethernet.src_addr").ToUint64(),
            0x02000000EEEEull);
}

TEST(Bmv2WanTest, TunnelEncapAndDecap) {
  auto program = BuildSaiProgram(Role::kWan);
  ASSERT_TRUE(program.ok()) << program.status();
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(*program);
  Interpreter interpreter(*program, models::SaiParserSpec());

  std::vector<p4rt::TableEntry> entries;
  auto push = [&](StatusOr<p4rt::TableEntry> e) {
    ASSERT_TRUE(e.ok()) << e.status();
    entries.push_back(std::move(e).value());
  };
  push(EntryBuilder(info, "l3_admit_tbl").Priority(1).Action("l3_admit")
           .Build());
  push(EntryBuilder(info, "acl_pre_ingress_tbl")
           .Priority(1)
           .Action("set_vrf", {{"vrf_id", U(1, models::kVrfWidth)}})
           .Build());
  push(EntryBuilder(info, "vrf_tbl")
           .Exact("vrf_id", U(1, models::kVrfWidth))
           .Action("no_action")
           .Build());
  push(EntryBuilder(info, "ipv4_tbl")
           .Exact("vrf_id", U(1, models::kVrfWidth))
           .Lpm("ipv4_dst", U(0x0A000000, 32), 24)
           .Action("set_tunnel", {{"tunnel_id", U(1, 16)},
                                  {"nexthop_id", U(1, 16)}})
           .Build());
  push(EntryBuilder(info, "tunnel_encap_tbl")
           .Exact("tunnel_id", U(1, 16))
           .Action("tunnel_encap", {{"src_ip", U(0xAC100001, 32)},
                                    {"dst_ip", U(0xAC110001, 32)}})
           .Build());
  push(EntryBuilder(info, "nexthop_tbl")
           .Exact("nexthop_id", U(1, 16))
           .Action("set_nexthop", {{"router_interface_id", U(1, 16)},
                                   {"neighbor_id", U(1, 16)}})
           .Build());
  push(EntryBuilder(info, "neighbor_tbl")
           .Exact("router_interface_id", U(1, 16))
           .Exact("neighbor_id", U(1, 16))
           .Action("set_dst_mac", {{"dst_mac", U(0x0400000000AAull, 48)}})
           .Build());
  push(EntryBuilder(info, "router_interface_tbl")
           .Exact("router_interface_id", U(1, 16))
           .Action("set_port_and_src_mac",
                   {{"port", U(7, p4ir::kPortWidth)},
                    {"src_mac", U(0x020000000001ull, 48)}})
           .Build());
  ASSERT_TRUE(interpreter.InstallEntries(entries).ok());

  models::Ipv4PacketSpec spec;
  spec.dst_ip = 0x0A000099;
  auto outcome =
      interpreter.Run(models::BuildIpv4Packet(*program, spec), 1, 0);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->dropped);
  EXPECT_EQ(outcome->egress_port, 7);
  const auto egress = packet::Parse(*program, models::SaiParserSpec(),
                                    outcome->packet_bytes);
  EXPECT_TRUE(egress.valid_headers.contains("inner_ipv4"));
  EXPECT_EQ(egress.fields.at("ipv4.src_addr").ToUint64(), 0xAC100001u);
  EXPECT_EQ(egress.fields.at("ipv4.dst_addr").ToUint64(), 0xAC110001u);
  EXPECT_EQ(egress.fields.at("ipv4.protocol").ToUint64(), 4u);
  EXPECT_EQ(egress.fields.at("inner_ipv4.dst_addr").ToUint64(), 0x0A000099u);
}

TEST(Bmv2ModelBugTest, OmittedTtlTrapDiverges) {
  auto correct = BuildSaiProgram(Role::kMiddleblock);
  models::ModelOptions buggy_options;
  buggy_options.omit_ttl_trap = true;
  auto buggy = BuildSaiProgram(Role::kMiddleblock, buggy_options);
  ASSERT_TRUE(correct.ok() && buggy.ok());
  EXPECT_NE(correct->Fingerprint(), buggy->Fingerprint());
}

}  // namespace
}  // namespace switchv::bmv2
