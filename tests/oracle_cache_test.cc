// The cached-vs-uncached conformance wall for the incremental differential
// oracle (fuzzer/oracle.h) and its shared judgment memo
// (fuzzer/judgment_cache.h).
//
// The contract under test: the judgment cache is a pure optimization.
// With the cache on, every campaign report — incident fingerprints, group
// counts, rendered exemplars, count-valued telemetry — is byte-identical
// to the uncached run, across the whole fault catalog and across every
// execution substrate. The wall also pins the cache-key algebra (distinct
// updates never alias, re-encoded equal entries always do), the
// invalidation rule (dependency-table digests: no interleaving of
// inserts/modifies/deletes can be served a stale verdict), and the
// thread-safety of one cache shared by many shards.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fuzzer/judgment_cache.h"
#include "switchv/experiment.h"

// Baked in by tests/CMakeLists.txt; substrate sweeps are skipped when the
// tool binaries are unavailable (e.g. a hand-rolled compile).
#ifndef SWITCHV_SHARD_WORKER_PATH
#define SWITCHV_SHARD_WORKER_PATH ""
#endif
#ifndef SWITCHV_WORKER_HOST_PATH
#define SWITCHV_WORKER_HOST_PATH ""
#endif

namespace switchv {
namespace {

// ---------------------------------------------------------------------------
// Shared fixture: one model + replay state for every oracle-level test.
// ---------------------------------------------------------------------------

class OracleCacheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto model = models::BuildSaiProgram(models::Role::kMiddleblock);
    ASSERT_TRUE(model.ok()) << model.status();
    model_ = new p4ir::Program(*std::move(model));
    info_ = new p4ir::P4Info(p4ir::P4Info::FromProgram(*model_));
    auto entries =
        models::GenerateEntries(*info_, models::Role::kMiddleblock,
                                ExperimentOptions::SmallWorkload(), /*seed=*/2);
    ASSERT_TRUE(entries.ok()) << entries.status();
    entries_ = new std::vector<p4rt::TableEntry>(*std::move(entries));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete info_;
    delete entries_;
    model_ = nullptr;
    info_ = nullptr;
    entries_ = nullptr;
  }

  // A healthy switch seeded with the replay state, ready to fuzz.
  static std::unique_ptr<sut::SwitchUnderTest> FreshSwitch() {
    auto sut = std::make_unique<sut::SwitchUnderTest>(
        nullptr, models::DefaultCloneSessions(), model_->cpu_port);
    EXPECT_TRUE(sut->SetForwardingPipelineConfig(*info_).ok());
    EXPECT_TRUE(sut->ApplyStandardBringUpConfig().ok());
    p4rt::WriteRequest seed;
    for (const p4rt::TableEntry& entry : *entries_) {
      seed.updates.push_back(p4rt::Update{p4rt::UpdateType::kInsert, entry});
    }
    (void)sut->Write(seed);
    return sut;
  }

  static p4ir::Program* model_;
  static p4ir::P4Info* info_;
  static std::vector<p4rt::TableEntry>* entries_;
};

p4ir::Program* OracleCacheTest::model_ = nullptr;
p4ir::P4Info* OracleCacheTest::info_ = nullptr;
std::vector<p4rt::TableEntry>* OracleCacheTest::entries_ = nullptr;

// One finding, rendered to comparable bytes.
std::string RenderFinding(const fuzzer::Finding& f) {
  std::string out = f.message + " | " + f.entry_text + " | " +
                    std::to_string(f.table_id);
  if (f.mutation.has_value()) {
    out += " | ";
    out += fuzzer::MutationName(*f.mutation);
  }
  return out;
}

std::vector<std::string> RenderFindings(
    const std::vector<fuzzer::Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const fuzzer::Finding& f : findings) out.push_back(RenderFinding(f));
  return out;
}

// ---------------------------------------------------------------------------
// Canonical-key algebra: the cache key's update-bytes component must be
// injective over distinct updates and invariant over re-encodings of the
// same entry (match order is semantically irrelevant).
// ---------------------------------------------------------------------------

TEST_F(OracleCacheTest, DistinctGeneratedUpdatesNeverShareAKey) {
  fuzzer::SwitchStateView state(*info_);
  state.Reset(*entries_);
  fuzzer::RequestGenerator generator(*info_, fuzzer::FuzzerOptions{},
                                     /*seed=*/11);
  std::map<std::string, p4rt::Update> by_key;
  int checked = 0;
  for (int batch = 0; batch < 10; ++batch) {
    for (const fuzzer::AnnotatedUpdate& annotated :
         generator.GenerateBatch(state, 60)) {
      const std::string key =
          fuzzer::CanonicalUpdateBytes(annotated.update);
      const auto [it, inserted] = by_key.emplace(key, annotated.update);
      if (!inserted) {
        // A key collision is only legal between semantically equal
        // updates (same type, equal entries up to match order).
        EXPECT_EQ(it->second.type, annotated.update.type);
        EXPECT_EQ(fuzzer::CanonicalEntryBytes(it->second.entry),
                  fuzzer::CanonicalEntryBytes(annotated.update.entry));
        EXPECT_EQ(it->second.entry.KeyFingerprint(),
                  annotated.update.entry.KeyFingerprint());
        ++checked;
      }
    }
  }
  EXPECT_GT(by_key.size(), 100u) << "generator produced too few distinct keys";
}

TEST_F(OracleCacheTest, ReencodedEqualEntriesAlwaysShareAKey) {
  // Find a generated entry with at least two match fields and permute them:
  // the canonical encoding must not change. Any semantic tweak must.
  fuzzer::SwitchStateView state(*info_);
  state.Reset(*entries_);
  fuzzer::RequestGenerator generator(*info_, fuzzer::FuzzerOptions{},
                                     /*seed=*/13);
  p4rt::TableEntry multi_match;
  bool found = false;
  for (int batch = 0; batch < 20 && !found; ++batch) {
    for (const fuzzer::AnnotatedUpdate& annotated :
         generator.GenerateBatch(state, 60)) {
      if (annotated.update.entry.matches.size() >= 2) {
        multi_match = annotated.update.entry;
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found) << "no multi-match entry generated";

  const std::string original = fuzzer::CanonicalEntryBytes(multi_match);
  p4rt::TableEntry permuted = multi_match;
  std::reverse(permuted.matches.begin(), permuted.matches.end());
  EXPECT_EQ(fuzzer::CanonicalEntryBytes(permuted), original)
      << "match order must not affect the canonical encoding";
  EXPECT_EQ(fuzzer::EntryContentHash(permuted),
            fuzzer::EntryContentHash(multi_match));

  p4rt::TableEntry other_priority = multi_match;
  other_priority.priority += 1;
  EXPECT_NE(fuzzer::CanonicalEntryBytes(other_priority), original);

  p4rt::TableEntry other_value = multi_match;
  other_value.matches[0].value.push_back('\x01');
  EXPECT_NE(fuzzer::CanonicalEntryBytes(other_value), original);

  p4rt::TableEntry other_table = multi_match;
  other_table.table_id += 1;
  EXPECT_NE(fuzzer::CanonicalEntryBytes(other_table), original);

  // Update type is part of the key: the same entry as an insert, modify,
  // and delete must occupy three distinct cache lines.
  const p4rt::Update ins{p4rt::UpdateType::kInsert, multi_match};
  const p4rt::Update mod{p4rt::UpdateType::kModify, multi_match};
  const p4rt::Update del{p4rt::UpdateType::kDelete, multi_match};
  EXPECT_NE(fuzzer::CanonicalUpdateBytes(ins),
            fuzzer::CanonicalUpdateBytes(mod));
  EXPECT_NE(fuzzer::CanonicalUpdateBytes(ins),
            fuzzer::CanonicalUpdateBytes(del));
  EXPECT_NE(fuzzer::CanonicalUpdateBytes(mod),
            fuzzer::CanonicalUpdateBytes(del));
}

// An empty value and a missing match must not alias (length prefixes keep
// the encoding injective even through empty strings).
TEST_F(OracleCacheTest, EmptyFieldsDoNotAlias) {
  p4rt::TableEntry a;
  a.table_id = 1;
  a.matches.push_back(p4rt::FieldMatch{/*field_id=*/1, "", "", 0});
  p4rt::TableEntry b;
  b.table_id = 1;
  EXPECT_NE(fuzzer::CanonicalEntryBytes(a), fuzzer::CanonicalEntryBytes(b));

  // Value/mask boundary shuffling: ("ab","") vs ("a","b") vs ("","ab").
  p4rt::TableEntry c = b;
  c.matches.push_back(p4rt::FieldMatch{1, "ab", "", 0});
  p4rt::TableEntry d = b;
  d.matches.push_back(p4rt::FieldMatch{1, "a", "b", 0});
  p4rt::TableEntry e = b;
  e.matches.push_back(p4rt::FieldMatch{1, "", "ab", 0});
  EXPECT_NE(fuzzer::CanonicalEntryBytes(c), fuzzer::CanonicalEntryBytes(d));
  EXPECT_NE(fuzzer::CanonicalEntryBytes(d), fuzzer::CanonicalEntryBytes(e));
  EXPECT_NE(fuzzer::CanonicalEntryBytes(c), fuzzer::CanonicalEntryBytes(e));
}

// ---------------------------------------------------------------------------
// Staleness property: across random insert/modify/delete interleavings on
// dependent tables, a cached oracle must judge every batch exactly like a
// fresh, uncached oracle handed the same tracked state — the dependency
// digests in the key must invalidate precisely when needed.
// ---------------------------------------------------------------------------

TEST_F(OracleCacheTest, RandomInterleavingsNeverServeAStaleJudgment) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto sut = FreshSwitch();
    fuzzer::JudgmentCache cache;
    fuzzer::Oracle cached(*info_, &cache);
    auto initial = sut->Read(p4rt::ReadRequest{});
    ASSERT_TRUE(initial.ok());
    cached.SyncState(initial->entries);

    // Delete-heavy mix: deletes + reinserts churn the @refers_to provider
    // tables, which is exactly where a stale verdict would hide (a delete
    // that dangled last batch may be fine this batch, and vice versa).
    fuzzer::FuzzerOptions churn;
    churn.delete_probability = 0.3;
    churn.modify_probability = 0.2;
    fuzzer::RequestGenerator generator(*info_, churn, seed);

    for (int batch_index = 0; batch_index < 8; ++batch_index) {
      const std::vector<fuzzer::AnnotatedUpdate> batch =
          generator.GenerateBatch(cached.state(), 50);
      p4rt::WriteRequest request;
      for (const fuzzer::AnnotatedUpdate& annotated : batch) {
        request.updates.push_back(annotated.update);
      }
      const p4rt::WriteResponse response = sut->Write(request);
      const auto post_read = sut->Read(p4rt::ReadRequest{});

      // The reference: a brand-new uncached oracle synced to the cached
      // oracle's pre-batch view. Fresh state, no memo — by definition it
      // cannot be stale.
      fuzzer::Oracle fresh(*info_);
      std::vector<p4rt::TableEntry> view;
      for (const p4rt::TableEntry* entry : cached.state().AllEntries()) {
        view.push_back(*entry);
      }
      fresh.SyncState(view);

      const auto cached_findings =
          cached.JudgeBatch(batch, response, post_read);
      const auto fresh_findings = fresh.JudgeBatch(batch, response, post_read);
      ASSERT_EQ(RenderFindings(cached_findings),
                RenderFindings(fresh_findings))
          << "cached oracle diverged on batch " << batch_index;
    }
    const fuzzer::JudgmentCacheStats& stats = cached.cache_stats();
    EXPECT_GT(stats.hits + stats.misses, 0u);
  }
}

// The memo must also survive *re-use across runs*: replaying the identical
// request stream against an identical switch serves almost everything from
// the warm cache, with findings identical to the cold run.
TEST_F(OracleCacheTest, WarmReplayServesHitsAndIdenticalFindings) {
  fuzzer::JudgmentCache cache;
  std::vector<std::string> cold_findings;
  std::vector<std::string> warm_findings;
  fuzzer::JudgmentCacheStats cold_stats;
  fuzzer::JudgmentCacheStats warm_stats;
  for (int run = 0; run < 2; ++run) {
    auto sut = FreshSwitch();
    fuzzer::Oracle oracle(*info_, &cache);
    auto initial = sut->Read(p4rt::ReadRequest{});
    ASSERT_TRUE(initial.ok());
    oracle.SyncState(initial->entries);
    fuzzer::RequestGenerator generator(*info_, fuzzer::FuzzerOptions{},
                                       /*seed=*/29);
    std::vector<std::string> findings;
    for (int batch_index = 0; batch_index < 4; ++batch_index) {
      const auto batch = generator.GenerateBatch(oracle.state(), 50);
      p4rt::WriteRequest request;
      for (const fuzzer::AnnotatedUpdate& annotated : batch) {
        request.updates.push_back(annotated.update);
      }
      const p4rt::WriteResponse response = sut->Write(request);
      const auto post_read = sut->Read(p4rt::ReadRequest{});
      for (std::string& rendered :
           RenderFindings(oracle.JudgeBatch(batch, response, post_read))) {
        findings.push_back(std::move(rendered));
      }
    }
    if (run == 0) {
      cold_findings = std::move(findings);
      cold_stats = oracle.cache_stats();
    } else {
      warm_findings = std::move(findings);
      warm_stats = oracle.cache_stats();
    }
  }
  EXPECT_EQ(cold_findings, warm_findings);
  EXPECT_EQ(cold_stats.hits, 0u) << "cold run cannot hit a fresh cache";
  EXPECT_GT(cold_stats.misses, 0u);
  EXPECT_GT(warm_stats.hits, 0u) << "identical replay must be served warm";
  // The replay is deterministic: every judgment the cold run inserted is
  // asked for again, so the warm run's misses can only be fewer.
  EXPECT_LT(warm_stats.misses, cold_stats.misses);
}

// ---------------------------------------------------------------------------
// Concurrency: N shards hammering one shared cache. Runs in the normal
// suite and — the actual point — under the SWITCHV_SANITIZE=thread CI job,
// where any unsynchronized map access or torn stats update is fatal.
// ---------------------------------------------------------------------------

TEST_F(OracleCacheTest, SharedCacheSurvivesConcurrentShards) {
  constexpr int kShards = 4;
  fuzzer::JudgmentCache cache;
  std::vector<fuzzer::JudgmentCacheStats> stats(kShards);
  std::vector<std::vector<std::string>> findings(kShards);
  std::vector<std::thread> shards;
  for (int shard = 0; shard < kShards; ++shard) {
    shards.emplace_back([&, shard] {
      auto sut = FreshSwitch();
      fuzzer::Oracle oracle(*info_, &cache);
      auto initial = sut->Read(p4rt::ReadRequest{});
      if (!initial.ok()) return;
      oracle.SyncState(initial->entries);
      // Half the shards replay one stream (contending on the same keys),
      // half fuzz their own (contending on stripe locks only).
      fuzzer::RequestGenerator generator(
          *info_, fuzzer::FuzzerOptions{},
          /*seed=*/shard < kShards / 2 ? 101 : 101 + shard);
      for (int batch_index = 0; batch_index < 3; ++batch_index) {
        const auto batch = generator.GenerateBatch(oracle.state(), 40);
        p4rt::WriteRequest request;
        for (const fuzzer::AnnotatedUpdate& annotated : batch) {
          request.updates.push_back(annotated.update);
        }
        const p4rt::WriteResponse response = sut->Write(request);
        const auto post_read = sut->Read(p4rt::ReadRequest{});
        for (std::string& rendered :
             RenderFindings(oracle.JudgeBatch(batch, response, post_read))) {
          findings[shard].push_back(std::move(rendered));
        }
      }
      stats[shard] = oracle.cache_stats();
    });
  }
  for (std::thread& shard : shards) shard.join();

  // A healthy switch: no shard may observe a divergence, cached or not.
  for (int shard = 0; shard < kShards; ++shard) {
    EXPECT_TRUE(findings[shard].empty())
        << "shard " << shard << ": " << findings[shard].front();
  }
  // Per-shard stats are plain values merged by addition — the merged
  // totals are the same regardless of accumulation order (the metrics
  // merge algebra the campaign engine relies on), and every lookup is
  // accounted exactly once.
  fuzzer::JudgmentCacheStats forward;
  fuzzer::JudgmentCacheStats backward;
  std::uint64_t lookups = 0;
  for (int shard = 0; shard < kShards; ++shard) {
    forward.hits += stats[shard].hits;
    forward.misses += stats[shard].misses;
    forward.evictions += stats[shard].evictions;
    const fuzzer::JudgmentCacheStats& rev = stats[kShards - 1 - shard];
    backward.hits += rev.hits;
    backward.misses += rev.misses;
    backward.evictions += rev.evictions;
    lookups += stats[shard].hits + stats[shard].misses;
  }
  EXPECT_EQ(forward.hits, backward.hits);
  EXPECT_EQ(forward.misses, backward.misses);
  EXPECT_EQ(forward.evictions, backward.evictions);
  EXPECT_GT(lookups, 0u);
  // Every distinct key that was ever inserted is still bounded by the
  // misses that created it.
  EXPECT_LE(cache.size(), forward.misses);

  // The live Metrics aggregate merges the same way: scraping the per-shard
  // stats in either order yields one snapshot.
  Metrics in_order;
  Metrics reversed;
  for (int shard = 0; shard < kShards; ++shard) {
    in_order.Add(in_order.oracle_cache_hits, stats[shard].hits);
    in_order.Add(in_order.oracle_cache_misses, stats[shard].misses);
    in_order.Add(in_order.oracle_cache_evictions, stats[shard].evictions);
    const fuzzer::JudgmentCacheStats& rev = stats[kShards - 1 - shard];
    reversed.Add(reversed.oracle_cache_hits, rev.hits);
    reversed.Add(reversed.oracle_cache_misses, rev.misses);
    reversed.Add(reversed.oracle_cache_evictions, rev.evictions);
  }
  EXPECT_EQ(in_order.Snapshot(/*wall_seconds=*/0).ToWireJson(),
            reversed.Snapshot(/*wall_seconds=*/0).ToWireJson());
}

// FIFO eviction keeps the cache bounded and charges the evicting caller.
TEST_F(OracleCacheTest, EvictionBoundsTheCacheAndIsCounted) {
  fuzzer::JudgmentCache::Options tiny;
  tiny.max_entries = 32;
  tiny.stripes = 4;
  fuzzer::JudgmentCache cache(tiny);
  fuzzer::JudgmentCacheStats stats;
  fuzzer::Expectation verdict;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    if (!cache.Lookup(key, &verdict, &stats)) {
      cache.Insert(key, fuzzer::Expectation{}, &stats);
    }
  }
  EXPECT_LE(cache.size(), 32u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.misses, 1000u);
  EXPECT_EQ(stats.hits, 0u);
}

// ---------------------------------------------------------------------------
// Campaign-level conformance: the full fault-catalog sweep, cached vs
// uncached — the reproduction's Table 1 must not move a cell, and the
// rendered nightly reports must match byte for byte.
// ---------------------------------------------------------------------------

ExperimentOptions FastOptions() {
  ExperimentOptions options;
  options.nightly.control_plane.num_requests = 12;
  options.nightly.control_plane.updates_per_request = 40;
  options.nightly.dataplane.packet_out_ports = 2;
  return options;
}

// The deterministic projection of a nightly report (mirrors the campaign
// projection in engine_test.cc): every group in merge order with its full
// exemplar, plus the count-valued telemetry. Timing fields and the oracle
// cache counters themselves are excluded — the latter are the *only*
// fields allowed to differ between cached and uncached runs.
std::string RenderNightly(const NightlyReport& report) {
  std::ostringstream out;
  out << "fuzzed=" << report.fuzzed_updates
      << " packets=" << report.packets_tested
      << " targets=" << report.generation.targets_covered << "/"
      << report.generation.targets_total
      << " queries=" << report.generation.solver_queries << "\n";
  for (const IncidentGroup& group : report.groups) {
    out << "group " << group.fingerprint << " x" << group.occurrences
        << " shards=[";
    for (const int shard : group.shards) out << shard << ",";
    out << "] detector=" << DetectorName(group.exemplar.detector)
        << " layer=" << sut::SutLayerName(group.exemplar.layer)
        << " shard=" << group.exemplar.shard << "\n"
        << "summary: " << group.exemplar.summary << "\n"
        << "details: " << group.exemplar.details << "\n"
        << group.exemplar.replay_trace << "\n";
  }
  const MetricsSnapshot& m = report.metrics;
  out << "counts " << m.shards_completed << " " << m.updates_sent << " "
      << m.requests_sent << " " << m.generated_valid << " "
      << m.generated_invalid << " " << m.oracle_findings << " "
      << m.packets_tested << " " << m.solver_queries << " "
      << m.switch_writes << " " << m.switch_reads << " "
      << m.switch_packets_injected << " " << m.incidents_raised << " "
      << m.incidents_unique << "\n";
  out << "hists " << m.switch_write_hist.count << " " << m.oracle_hist.count
      << " " << m.reference_hist.count << " " << m.generation_hist.count
      << "\n";
  return out.str();
}

std::set<std::uint64_t> Fingerprints(const NightlyReport& report) {
  std::set<std::uint64_t> fingerprints;
  for (const IncidentGroup& group : report.groups) {
    fingerprints.insert(group.fingerprint);
  }
  return fingerprints;
}

TEST(OracleCacheConformanceTest, FaultCatalogSweepIsByteIdenticalUncached) {
  auto cached = RunFullSweep(FastOptions());
  ASSERT_TRUE(cached.ok()) << cached.status();

  ExperimentOptions uncached_options = FastOptions();
  uncached_options.nightly.control_plane.oracle_cache = false;
  auto uncached = RunFullSweep(uncached_options);
  ASSERT_TRUE(uncached.ok()) << uncached.status();

  ASSERT_EQ(cached->size(), sut::BugCatalog().size());
  ASSERT_EQ(cached->size(), uncached->size());
  std::uint64_t cached_traffic = 0;
  for (std::size_t i = 0; i < cached->size(); ++i) {
    const BugRunResult& with_cache = (*cached)[i];
    const BugRunResult& without = (*uncached)[i];
    SCOPED_TRACE(with_cache.bug->name);
    ASSERT_EQ(with_cache.bug->fault, without.bug->fault);

    EXPECT_EQ(with_cache.detected, without.detected);
    EXPECT_EQ(with_cache.detector, without.detector);
    EXPECT_EQ(with_cache.incident_count, without.incident_count);
    EXPECT_EQ(with_cache.first_incident, without.first_incident);
    EXPECT_EQ(Fingerprints(with_cache.report), Fingerprints(without.report));
    EXPECT_EQ(RenderNightly(with_cache.report), RenderNightly(without.report));

    cached_traffic += with_cache.report.metrics.oracle_cache_hits +
                      with_cache.report.metrics.oracle_cache_misses;
    EXPECT_EQ(without.report.metrics.oracle_cache_hits, 0u);
    EXPECT_EQ(without.report.metrics.oracle_cache_misses, 0u);
    EXPECT_EQ(without.report.metrics.oracle_cache_evictions, 0u);
  }
  // The cached sweep must actually have gone through the memo.
  EXPECT_GT(cached_traffic, 0u);
}

// ---------------------------------------------------------------------------
// Substrate conformance: cached and uncached reports are byte-identical in
// all three execution modes, and to each other. The cached subprocess/
// remote runs exercise the `oracle_cache` wire field (shard_io.cc) and the
// per-worker process-wide cache (engine.cc).
// ---------------------------------------------------------------------------

class SubstrateConformanceTest : public OracleCacheTest {
 protected:
  static CampaignOptions FastCampaign() {
    CampaignOptions options;
    options.seed = 7;
    options.control_plane_shards = 4;
    options.dataplane_shards = 1;
    options.run_dataplane = false;  // the cache is a control-plane concern
    options.control_plane.num_requests = 12;
    options.control_plane.updates_per_request = 40;
    return options;
  }

  static ShardScenario Scenario() {
    ShardScenario scenario;
    scenario.role = models::Role::kMiddleblock;
    scenario.workload = ExperimentOptions::SmallWorkload();
    scenario.entry_seed = 2;
    return scenario;
  }

  static CampaignReport Run(const sut::FaultRegistry* faults,
                            const CampaignOptions& options) {
    return RunValidationCampaign(faults, *model_, models::SaiParserSpec(),
                                 *entries_, options);
  }

  // The campaign projection from engine_test.cc, verbatim.
  static std::string RenderReport(const CampaignReport& report) {
    std::ostringstream out;
    out << "shards=" << report.shards_run
        << " fuzzed=" << report.fuzzed_updates
        << " packets=" << report.packets_tested
        << " targets=" << report.generation.targets_covered << "/"
        << report.generation.targets_total
        << " queries=" << report.generation.solver_queries << "\n";
    for (const IncidentGroup& group : report.groups) {
      out << "group " << group.fingerprint << " x" << group.occurrences
          << " shards=[";
      for (const int shard : group.shards) out << shard << ",";
      out << "] detector=" << DetectorName(group.exemplar.detector)
          << " layer=" << sut::SutLayerName(group.exemplar.layer)
          << " shard=" << group.exemplar.shard << "\n"
          << "summary: " << group.exemplar.summary << "\n"
          << "details: " << group.exemplar.details << "\n"
          << group.exemplar.replay_trace << "\n";
    }
    const MetricsSnapshot& m = report.metrics;
    out << "counts " << m.shards_completed << " " << m.updates_sent << " "
        << m.requests_sent << " " << m.generated_valid << " "
        << m.generated_invalid << " " << m.oracle_findings << " "
        << m.packets_tested << " " << m.solver_queries << " "
        << m.switch_writes << " " << m.switch_reads << " "
        << m.switch_packets_injected << " " << m.incidents_raised << " "
        << m.incidents_unique << "\n";
    out << "hists " << m.switch_write_hist.count << " "
        << m.oracle_hist.count << " " << m.reference_hist.count << " "
        << m.generation_hist.count << "\n";
    return out.str();
  }
};

// Launches a switchv_worker_host on an ephemeral loopback port (identical
// to the engine_test helper): announces its endpoint on stdout, SIGKILLed
// and reaped on destruction.
class WorkerHost {
 public:
  WorkerHost() {
    int out[2] = {-1, -1};
    if (::pipe(out) != 0) return;
    std::vector<std::string> args = {
        SWITCHV_WORKER_HOST_PATH,
        "--port=0",
        "--bind=127.0.0.1",
        std::string("--worker=") + SWITCHV_SHARD_WORKER_PATH,
        "--heartbeat-interval=0.2",
    };
    std::vector<char*> argv;
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(out[1], STDOUT_FILENO);
      ::close(out[0]);
      ::close(out[1]);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    ::close(out[1]);
    if (pid_ > 0) {
      std::string line;
      char c = 0;
      while (::read(out[0], &c, 1) == 1 && c != '\n') line.push_back(c);
      const std::string_view marker = "listening on ";
      const std::size_t at = line.find(marker);
      if (at != std::string::npos) {
        endpoint_ = line.substr(at + marker.size());
      }
    }
    ::close(out[0]);
  }
  ~WorkerHost() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
    }
  }
  WorkerHost(const WorkerHost&) = delete;
  WorkerHost& operator=(const WorkerHost&) = delete;

  bool ok() const { return !endpoint_.empty(); }
  const std::string& endpoint() const { return endpoint_; }

 private:
  pid_t pid_ = -1;
  std::string endpoint_;
};

TEST_F(SubstrateConformanceTest, CachedAndUncachedMatchOnEverySubstrate) {
  sut::FaultRegistry faults;
  faults.Activate(sut::Fault::kDeleteNonExistingFailsBatch);

  std::vector<std::pair<std::string, std::string>> reports;

  CampaignOptions in_process = FastCampaign();
  in_process.parallelism = 2;
  reports.emplace_back("in-process cached",
                       RenderReport(Run(&faults, in_process)));
  CampaignOptions in_process_off = in_process;
  in_process_off.control_plane.oracle_cache = false;
  reports.emplace_back("in-process uncached",
                       RenderReport(Run(&faults, in_process_off)));

  if (!std::string(SWITCHV_SHARD_WORKER_PATH).empty()) {
    CampaignOptions subprocess = FastCampaign();
    subprocess.execution = CampaignOptions::Execution::kSubprocess;
    subprocess.worker_binary = SWITCHV_SHARD_WORKER_PATH;
    subprocess.scenario = Scenario();
    subprocess.parallelism = 2;
    reports.emplace_back("subprocess cached",
                         RenderReport(Run(&faults, subprocess)));
    CampaignOptions subprocess_off = subprocess;
    subprocess_off.control_plane.oracle_cache = false;
    reports.emplace_back("subprocess uncached",
                         RenderReport(Run(&faults, subprocess_off)));
  }

  if (!std::string(SWITCHV_WORKER_HOST_PATH).empty()) {
    WorkerHost host;
    ASSERT_TRUE(host.ok()) << "worker host failed to start";
    CampaignOptions remote = FastCampaign();
    remote.execution = CampaignOptions::Execution::kRemote;
    remote.remote_endpoints = {host.endpoint()};
    remote.scenario = Scenario();
    remote.parallelism = 2;
    reports.emplace_back("remote cached",
                         RenderReport(Run(&faults, remote)));
    CampaignOptions remote_off = remote;
    remote_off.control_plane.oracle_cache = false;
    reports.emplace_back("remote uncached",
                         RenderReport(Run(&faults, remote_off)));
  }

  for (std::size_t i = 1; i < reports.size(); ++i) {
    SCOPED_TRACE(reports[i].first);
    EXPECT_EQ(reports[0].second, reports[i].second)
        << "report diverged from " << reports[0].first;
  }
}

// The `oracle_cache` flag survives the spec wire round-trip.
TEST(OracleCacheWireTest, SpecRoundTripCarriesTheKillSwitch) {
  for (const bool enabled : {true, false}) {
    WireShardSpec spec;
    spec.kind = WireShardSpec::Kind::kControlPlane;
    spec.scenario.role = models::Role::kMiddleblock;
    spec.scenario.workload = ExperimentOptions::SmallWorkload();
    spec.scenario.entry_seed = 2;
    spec.control_plane.oracle_cache = enabled;
    auto parsed = ParseShardSpec(SerializeShardSpec(spec));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->control_plane.oracle_cache, enabled);
  }
}

// ---------------------------------------------------------------------------
// Regression: `generation_cache_hits` was exported but never pinned by a
// test. A warm packet cache shared across two identical campaigns must
// register hits on the second run — and must not change the report.
// ---------------------------------------------------------------------------

class GenerationCacheTest : public OracleCacheTest {};

TEST_F(GenerationCacheTest, WarmPacketCacheRegistersHits) {
  symbolic::PacketCache packet_cache;
  CampaignOptions options;
  options.seed = 7;
  options.run_control_plane = false;
  options.dataplane_shards = 2;
  options.dataplane.packet_out_ports = 2;
  options.dataplane.cache = &packet_cache;

  const CampaignReport cold = RunValidationCampaign(
      nullptr, *model_, models::SaiParserSpec(), *entries_, options);
  const CampaignReport warm = RunValidationCampaign(
      nullptr, *model_, models::SaiParserSpec(), *entries_, options);

  EXPECT_EQ(cold.metrics.generation_cache_hits, 0u)
      << "cold run cannot hit an empty packet cache";
  EXPECT_GT(warm.metrics.generation_cache_hits, 0u)
      << "second run with a shared cache must skip regeneration";
  EXPECT_EQ(cold.FingerprintSet(), warm.FingerprintSet());
  EXPECT_EQ(cold.packets_tested, warm.packets_tested);
}

}  // namespace
}  // namespace switchv
