#include <gtest/gtest.h>

#include <algorithm>

#include "fuzzer/generator.h"
#include "fuzzer/oracle.h"
#include "models/entry_gen.h"
#include "models/sai_model.h"
#include "p4runtime/validator.h"
#include "sut/switch_stack.h"

namespace switchv::fuzzer {
namespace {

using models::BuildSaiProgram;
using models::Role;

class FuzzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto program = BuildSaiProgram(Role::kMiddleblock);
    ASSERT_TRUE(program.ok()) << program.status();
    program_ = std::move(program).value();
    info_ = p4ir::P4Info::FromProgram(program_);
    state_ = std::make_unique<SwitchStateView>(info_);
    // Seed the state with a small installed base so references resolve.
    auto entries = models::GenerateEntries(
        info_, Role::kMiddleblock, SmallSpec(), /*seed=*/3);
    ASSERT_TRUE(entries.ok());
    base_entries_ = std::move(entries).value();
    state_->Reset(base_entries_);
  }

  static models::WorkloadSpec SmallSpec() {
    models::WorkloadSpec spec;
    spec.num_vrfs = 2;
    spec.num_l3_admit = 2;
    spec.num_pre_ingress = 4;
    spec.num_ipv4_routes = 12;
    spec.num_ipv6_routes = 4;
    spec.num_wcmp_groups = 2;
    spec.num_nexthops = 4;
    spec.num_neighbors = 4;
    spec.num_rifs = 3;
    spec.num_acl_ingress = 5;
    spec.num_mirror_sessions = 2;
    spec.num_egress_rifs = 2;
    return spec;
  }

  p4ir::Program program_;
  p4ir::P4Info info_;
  std::unique_ptr<SwitchStateView> state_;
  std::vector<p4rt::TableEntry> base_entries_;
};

TEST_F(FuzzerTest, StateViewTracksEntriesAndReferences) {
  EXPECT_EQ(state_->TotalEntries(), base_entries_.size());
  // VRF values are available as reference targets.
  const auto vrfs = state_->KeyValues("vrf_tbl", "vrf_id");
  EXPECT_EQ(vrfs.size(), 2u);
  // A VRF referenced by routes is flagged as referenced.
  for (const p4rt::TableEntry* entry :
       state_->TableEntries(info_.FindTableByName("vrf_tbl")->id)) {
    EXPECT_TRUE(state_->IsReferenced(*entry));
  }
  // An ACL entry is not referenced by anything.
  for (const p4rt::TableEntry* entry :
       state_->TableEntries(info_.FindTableByName("acl_ingress_tbl")->id)) {
    EXPECT_FALSE(state_->IsReferenced(*entry));
  }
}

TEST_F(FuzzerTest, ValidEntriesPassFullValidation) {
  RequestGenerator generator(info_, FuzzerOptions{}, /*seed=*/7);
  int generated = 0;
  for (int i = 0; i < 300; ++i) {
    auto entry = generator.GenerateValidEntry(*state_);
    if (!entry.ok()) continue;
    ++generated;
    EXPECT_TRUE(p4rt::ValidateEntry(info_, *entry).ok())
        << entry->ToString(&info_);
  }
  EXPECT_GT(generated, 250);
}

TEST_F(FuzzerTest, NaiveModeFrequentlyViolatesConstraints) {
  // Paper §4.1: without constraint-aware generation, constrained tables
  // frequently receive invalid (non-compliant) requests.
  FuzzerOptions naive;
  naive.use_bdd_for_constraints = false;
  RequestGenerator generator(info_, naive, /*seed=*/7);
  int constrained = 0;
  int violations = 0;
  for (int i = 0; i < 500; ++i) {
    auto entry = generator.GenerateValidEntry(*state_);
    if (!entry.ok()) continue;
    const p4ir::TableInfo* table = info_.FindTable(entry->table_id);
    if (table->entry_restriction.empty()) continue;
    ++constrained;
    auto compliant = p4rt::IsConstraintCompliant(info_, *entry);
    ASSERT_TRUE(compliant.ok());
    if (!*compliant) ++violations;
  }
  EXPECT_GT(constrained, 20);
  EXPECT_GT(violations, 0);
}

TEST_F(FuzzerTest, MutationsProduceInvalidRequests) {
  RequestGenerator generator(info_, FuzzerOptions{}, /*seed=*/11);
  std::map<Mutation, int> produced;
  std::map<Mutation, int> accepted_as_valid;
  const auto batch = generator.GenerateBatch(*state_, 3000);
  for (const AnnotatedUpdate& update : batch) {
    if (!update.mutation.has_value()) continue;
    ++produced[*update.mutation];
    // Mutated inserts must fail full validation (the state-dependent
    // mutations DuplicateEntry / DeleteNonExisting / InvalidReference are
    // judged against switch state instead).
    if (*update.mutation == Mutation::kDuplicateEntry ||
        *update.mutation == Mutation::kDeleteNonExisting ||
        *update.mutation == Mutation::kInvalidReference) {
      continue;
    }
    if (p4rt::ValidateEntry(info_, update.update.entry).ok()) {
      ++accepted_as_valid[*update.mutation];
    }
  }
  // Most mutation kinds were exercised across 3000 updates.
  EXPECT_GE(produced.size(), 12u);
  for (const auto& [mutation, count] : accepted_as_valid) {
    ADD_FAILURE() << MutationName(mutation) << " produced " << count
                  << " entries that still pass validation";
  }
}

TEST_F(FuzzerTest, BatchesAreOrderIndependent) {
  // Intended-valid updates never reference values first provided inside
  // the same batch (paper §4.4).
  RequestGenerator generator(info_, FuzzerOptions{}, /*seed=*/13);
  const auto batch = generator.GenerateBatch(*state_, 500);
  for (const AnnotatedUpdate& update : batch) {
    if (update.mutation.has_value()) continue;
    if (update.update.type != p4rt::UpdateType::kInsert) continue;
    // All references must resolve against the PRE-batch state.
    const p4ir::TableInfo* table =
        info_.FindTable(update.update.entry.table_id);
    ASSERT_NE(table, nullptr);
    for (const p4rt::FieldMatch& m : update.update.entry.matches) {
      const p4ir::MatchFieldInfo* field = table->FindMatchField(m.field_id);
      if (field == nullptr || !field->refers_to.has_value()) continue;
      const auto pool =
          state_->KeyValues(field->refers_to->table, field->refers_to->key);
      EXPECT_NE(std::find(pool.begin(), pool.end(), m.value), pool.end())
          << "in-batch dependency in "
          << update.update.entry.ToString(&info_);
    }
  }
}

TEST_F(FuzzerTest, OracleAcceptsCorrectSwitch) {
  // Drive a real healthy switch with fuzzed batches: zero findings.
  sut::SwitchUnderTest sut(nullptr, models::DefaultCloneSessions(),
                           models::kCpuPort);
  ASSERT_TRUE(sut.SetForwardingPipelineConfig(info_).ok());
  p4rt::WriteRequest seed;
  for (const p4rt::TableEntry& entry : base_entries_) {
    seed.updates.push_back(p4rt::Update{p4rt::UpdateType::kInsert, entry});
  }
  ASSERT_TRUE(sut.Write(seed).all_ok());

  RequestGenerator generator(info_, FuzzerOptions{}, /*seed=*/17);
  Oracle oracle(info_);
  oracle.SyncState(base_entries_);
  for (int round = 0; round < 10; ++round) {
    const auto batch = generator.GenerateBatch(oracle.state(), 50);
    p4rt::WriteRequest request;
    for (const AnnotatedUpdate& update : batch) {
      request.updates.push_back(update.update);
    }
    const p4rt::WriteResponse response = sut.Write(request);
    const auto read = sut.Read(p4rt::ReadRequest{});
    const auto findings = oracle.JudgeBatch(batch, response, read);
    for (const Finding& finding : findings) {
      ADD_FAILURE() << "round " << round << ": " << finding.message << " ["
                    << finding.entry_text << "]";
    }
    if (!findings.empty()) break;
  }
}

TEST_F(FuzzerTest, OracleFlagsWrongAcceptance) {
  Oracle oracle(info_);
  oracle.SyncState(base_entries_);
  RequestGenerator generator(info_, FuzzerOptions{}, /*seed=*/19);
  // Build a batch with one guaranteed-invalid update (unknown table id).
  auto valid = generator.GenerateValidEntry(*state_);
  ASSERT_TRUE(valid.ok());
  p4rt::TableEntry bogus = *valid;
  bogus.table_id = 0x0BADF00D;
  std::vector<AnnotatedUpdate> batch = {
      AnnotatedUpdate{p4rt::Update{p4rt::UpdateType::kInsert, bogus},
                      Mutation::kInvalidTableId}};
  // Pretend the switch accepted it.
  p4rt::WriteResponse response;
  response.statuses = {OkStatus()};
  p4rt::ReadResponse read;
  for (const p4rt::TableEntry& e : base_entries_) read.entries.push_back(e);
  const auto findings = oracle.JudgeBatch(batch, response,
                                          StatusOr<p4rt::ReadResponse>(read));
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].message.find("must reject"), std::string::npos);
}

TEST_F(FuzzerTest, OracleFlagsWrongRejection) {
  Oracle oracle(info_);
  oracle.SyncState(base_entries_);
  RequestGenerator generator(info_, FuzzerOptions{}, /*seed=*/23);
  StatusOr<p4rt::TableEntry> fresh = NotFoundError("");
  for (int i = 0; i < 50 && !fresh.ok(); ++i) {
    auto candidate = generator.GenerateValidEntry(*state_);
    if (candidate.ok() && !state_->Contains(*candidate)) fresh = candidate;
  }
  ASSERT_TRUE(fresh.ok());
  std::vector<AnnotatedUpdate> batch = {AnnotatedUpdate{
      p4rt::Update{p4rt::UpdateType::kInsert, *fresh}, std::nullopt}};
  p4rt::WriteResponse response;
  response.statuses = {InternalError("spurious failure")};
  p4rt::ReadResponse read;
  for (const p4rt::TableEntry& e : base_entries_) read.entries.push_back(e);
  const auto findings = oracle.JudgeBatch(batch, response,
                                          StatusOr<p4rt::ReadResponse>(read));
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].message.find("must accept"), std::string::npos);
}

TEST_F(FuzzerTest, OracleFlagsStateDivergence) {
  Oracle oracle(info_);
  oracle.SyncState(base_entries_);
  // Empty batch, but the read is missing an entry the oracle knows about.
  p4rt::ReadResponse read;
  for (std::size_t i = 0; i + 1 < base_entries_.size(); ++i) {
    read.entries.push_back(base_entries_[i]);
  }
  const auto findings =
      oracle.JudgeBatch({}, p4rt::WriteResponse{},
                        StatusOr<p4rt::ReadResponse>(read));
  ASSERT_FALSE(findings.empty());
}

TEST_F(FuzzerTest, ConstraintViolationMutationIsWellFormedButNonCompliant) {
  RequestGenerator generator(info_, FuzzerOptions{}, /*seed=*/29);
  int seen = 0;
  const auto batch = generator.GenerateBatch(*state_, 3000);
  for (const AnnotatedUpdate& update : batch) {
    if (update.mutation != Mutation::kConstraintViolation) continue;
    ++seen;
    // Syntactically valid...
    EXPECT_TRUE(
        p4rt::ValidateEntrySyntax(info_, update.update.entry).ok())
        << update.update.entry.ToString(&info_);
    // ...but not constraint compliant.
    auto compliant =
        p4rt::IsConstraintCompliant(info_, update.update.entry);
    ASSERT_TRUE(compliant.ok());
    EXPECT_FALSE(*compliant) << update.update.entry.ToString(&info_);
  }
  EXPECT_GT(seen, 5);
}

}  // namespace
}  // namespace switchv::fuzzer
