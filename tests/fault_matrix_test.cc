// Fault-matrix conformance: every injectable fault in the catalog
// (sut/fault.h), activated alone, is (a) detected by a small nightly
// campaign, (b) by the expected detector, and (c) attributed to the
// expected SUT layer — the reproduction's analogue of the paper's Table 1,
// asserted fault by fault rather than printed. The campaign is fully
// deterministic in its fixed seed, so the matrix below is exact, not a
// tolerance band; a stack change that shifts any cell fails loudly here.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "switchv/experiment.h"

// Baked in by tests/CMakeLists.txt; the subprocess sweep is skipped when
// the worker binary is unavailable (e.g. a hand-rolled compile).
#ifndef SWITCHV_SHARD_WORKER_PATH
#define SWITCHV_SHARD_WORKER_PATH ""
#endif

namespace switchv {
namespace {

ExperimentOptions FastOptions() {
  ExperimentOptions options;
  options.nightly.control_plane.num_requests = 12;
  options.nightly.control_plane.updates_per_request = 40;
  options.nightly.dataplane.packet_out_ports = 2;
  return options;
}

// One row per fault: the detector that raises the campaign's *first*
// incident and the SUT layer that incident is attributed to. The detector
// here is the first to fire under the fixed-seed fast campaign — it can
// differ from the catalog's expected_detector (which records the component
// expected to find the bug in production) when the control-plane fuzzing
// phase, which runs first, trips over a data-plane-class bug's control
// surface. The layer column is the Table 1 attribution proper.
struct MatrixRow {
  sut::Fault fault;
  Detector detector;
  sut::SutLayer layer;
};

constexpr sut::SutLayer kP4rt = sut::SutLayer::kP4rtServer;
constexpr sut::SutLayer kOrch = sut::SutLayer::kOrchestration;
constexpr sut::SutLayer kSai = sut::SutLayer::kSyncdSai;
constexpr sut::SutLayer kAsic = sut::SutLayer::kAsic;

const MatrixRow kFaultMatrix[] = {
    // ---- P4Runtime server ----
    {sut::Fault::kDeleteNonExistingFailsBatch, Detector::kFuzzer, kP4rt},
    {sut::Fault::kModifyKeepsOldActionParams, Detector::kFuzzer, kP4rt},
    {sut::Fault::kP4InfoPushFailureSwallowed, Detector::kFuzzer, kOrch},
    {sut::Fault::kReadTernaryUnsupported, Detector::kFuzzer, kP4rt},
    {sut::Fault::kAclTableNameWrongCase, Detector::kFuzzer, kOrch},
    {sut::Fault::kDuplicateEntryWrongCode, Detector::kFuzzer, kP4rt},
    {sut::Fault::kPacketOutPuntedBack, Detector::kSymbolic, kAsic},
    {sut::Fault::kAclKeySpaceCharRejected, Detector::kFuzzer, kP4rt},
    {sut::Fault::kBatchDeleteInconsistentState, Detector::kFuzzer, kP4rt},
    {sut::Fault::kConstraintCheckSkipped, Detector::kFuzzer, kP4rt},
    // ---- gNMI ----
    {sut::Fault::kGnmiPortSpeedBreaksPunt, Detector::kSymbolic, kAsic},
    // ---- Orchestration agent ----
    {sut::Fault::kWcmpPartialCleanup, Detector::kFuzzer, kAsic},
    {sut::Fault::kWcmpRejectsDuplicateActions, Detector::kFuzzer, kOrch},
    {sut::Fault::kWcmpUpdateRemovesMembers, Detector::kSymbolic, kAsic},
    {sut::Fault::kVrfDeleteBroken, Detector::kFuzzer, kAsic},
    {sut::Fault::kNeighborDanglingAccepted, Detector::kFuzzer, kP4rt},
    {sut::Fault::kMirrorSessionIgnored, Detector::kSymbolic, kAsic},
    // ---- SyncD / SAI ----
    {sut::Fault::kAclResourceLeak, Detector::kFuzzer, kAsic},
    {sut::Fault::kSubmitToIngressNotL3Enabled, Detector::kSymbolic, kSai},
    {sut::Fault::kDscpRemarkedToZero, Detector::kSymbolic, kAsic},
    {sut::Fault::kRouteDeleteLeavesStale, Detector::kFuzzer, kAsic},
    {sut::Fault::kEgressRifStaleSrcMac, Detector::kSymbolic, kAsic},
    // ---- Switch Linux ----
    {sut::Fault::kPortSyncDaemonRestart, Detector::kSymbolic, kAsic},
    {sut::Fault::kLldpDaemonPunts, Detector::kSymbolic, kAsic},
    {sut::Fault::kIpv6RouterSolicitation, Detector::kSymbolic, kAsic},
    // ---- Hardware ----
    {sut::Fault::kAsicCapacityBelowGuarantee, Detector::kFuzzer, kAsic},
    {sut::Fault::kCursedPortDropsPackets, Detector::kSymbolic, kAsic},
    // ---- P4 toolchain ----
    {sut::Fault::kP4InfoZeroByteIds, Detector::kFuzzer, kP4rt},
    // ---- Input P4 program (model wrong, switch right: the divergence
    // still surfaces at the layer whose behaviour the model mispredicts)
    {sut::Fault::kModelMissingTtlTrap, Detector::kSymbolic, kAsic},
    {sut::Fault::kModelMissingBroadcastDrop, Detector::kSymbolic, kAsic},
    {sut::Fault::kModelAclAfterRewrite, Detector::kSymbolic, kAsic},
    {sut::Fault::kModelWrongIcmpField, Detector::kSymbolic, kAsic},
    // ---- Cerberus switch software ----
    {sut::Fault::kEncapReversedDstIp, Detector::kSymbolic, kAsic},
    {sut::Fault::kDecapSkipsTtlCopy, Detector::kSymbolic, kAsic},
    {sut::Fault::kEncapWrongProtocol, Detector::kSymbolic, kAsic},
    {sut::Fault::kAclPriorityInverted, Detector::kSymbolic, kAsic},
    {sut::Fault::kLpmTreatsPrefixAsExact, Detector::kSymbolic, kAsic},
    {sut::Fault::kWcmpSingleMemberOnly, Detector::kSymbolic, kAsic},
    {sut::Fault::kCerberusRejectsMaxLenPrefix, Detector::kSymbolic, kP4rt},
    {sut::Fault::kCerberusModelAclAfterRewrite, Detector::kSymbolic, kAsic},
    // ---- BMv2 reference simulator: not a SUT layer, so unattributed ----
    {sut::Fault::kBmv2RejectsValidOptional, Detector::kSymbolic,
     sut::SutLayer::kNone},
};

const MatrixRow* FindRow(sut::Fault fault) {
  for (const MatrixRow& row : kFaultMatrix) {
    if (row.fault == fault) return &row;
  }
  return nullptr;
}

// Coverage is structural: the expectation table, the bug catalog, and the
// Fault enum are three views of the same set. A fault added to the enum
// without a catalog row or a matrix row fails here, before any campaign
// runs.
TEST(FaultMatrixTest, MatrixAndCatalogCoverEveryFault) {
  EXPECT_EQ(static_cast<int>(std::size(kFaultMatrix)), sut::kNumFaults);
  EXPECT_EQ(static_cast<int>(sut::BugCatalog().size()), sut::kNumFaults);
  std::set<sut::Fault> seen;
  for (int id = 0; id < sut::kNumFaults; ++id) {
    const sut::Fault fault = static_cast<sut::Fault>(id);
    EXPECT_NE(sut::FindBug(fault), nullptr) << "fault " << id
                                            << " missing from the catalog";
    EXPECT_NE(FindRow(fault), nullptr)
        << "fault " << id << " missing from kFaultMatrix";
    EXPECT_TRUE(seen.insert(fault).second);
  }
}

// One row of assertions per fault: detected, by the expected detector,
// attributed to the expected layer, no fault skipped. Shared between the
// in-process and subprocess sweeps — the matrix is the contract, the
// execution substrate must not move a cell.
void ExpectSweepMatchesMatrix(const std::vector<BugRunResult>& results) {
  ASSERT_EQ(results.size(), sut::BugCatalog().size());
  std::set<sut::Fault> swept;
  for (const BugRunResult& result : results) {
    SCOPED_TRACE(result.bug->name);
    swept.insert(result.bug->fault);
    const MatrixRow* row = FindRow(result.bug->fault);
    ASSERT_NE(row, nullptr);

    EXPECT_TRUE(result.detected) << "not detected by the nightly campaign";
    if (!result.detected) continue;
    ASSERT_TRUE(result.detector.has_value());
    EXPECT_EQ(*result.detector, row->detector)
        << "first incident from " << DetectorName(*result.detector)
        << ", expected " << DetectorName(row->detector) << " — "
        << result.first_incident;
    ASSERT_FALSE(result.report.incidents.empty());
    const Incident& first = result.report.incidents.front();
    EXPECT_EQ(first.layer, row->layer)
        << "attributed to " << sut::SutLayerName(first.layer)
        << ", expected " << sut::SutLayerName(row->layer) << " — "
        << first.summary;
  }
  EXPECT_EQ(static_cast<int>(swept.size()), sut::kNumFaults)
      << "sweep skipped a fault";
}

// The matrix itself: one sweep over the whole catalog (sharing the
// p4-symbolic packet cache across runs, as the nightly fleet does), then
// one row of assertions per fault.
TEST(FaultMatrixTest, EveryFaultIsDetectedWithExpectedDetectorAndLayer) {
  auto results = RunFullSweep(FastOptions());
  ASSERT_TRUE(results.ok()) << results.status();
  ExpectSweepMatchesMatrix(*results);
}

// The same matrix under subprocess execution: each bug's campaign shards
// run in spawned `switchv_shard_worker` processes that rebuild the model,
// workload, and entries from the scenario recipe RunNightlyForBug derives
// per bug (experiment.cc). Test packets are still generated once in this
// process against the shared cache — workers never run the solver. Every
// detector and layer cell must match the in-process matrix.
TEST(FaultMatrixTest, SubprocessSweepMatchesMatrix) {
  if (std::string(SWITCHV_SHARD_WORKER_PATH).empty()) {
    GTEST_SKIP() << "shard worker binary not baked in";
  }
  ExperimentOptions options = FastOptions();
  options.nightly.execution = CampaignOptions::Execution::kSubprocess;
  options.nightly.worker_binary = SWITCHV_SHARD_WORKER_PATH;
  auto results = RunFullSweep(options);
  ASSERT_TRUE(results.ok()) << results.status();
  ExpectSweepMatchesMatrix(*results);
}

}  // namespace
}  // namespace switchv
