// Fleet provisioner soak suite (ctest -L fleet): a fixed-seed campaign
// dispatched over a provisioned local-process fleet — with worker hosts
// SIGKILLed mid-campaign and reprovisioned — must produce a report
// byte-identical to the in-process run. Also: reprovision-budget
// exhaustion degrading to synthetic harness incidents, the command-
// template backend, and wrong-secret probe rejection.
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "switchv/experiment.h"
#include "switchv/fleet.h"
#include "switchv/shard_transport.h"

// Baked in by tests/CMakeLists.txt; the suite skips when the tool
// binaries are unavailable (e.g. a hand-rolled compile).
#ifndef SWITCHV_SHARD_WORKER_PATH
#define SWITCHV_SHARD_WORKER_PATH ""
#endif
#ifndef SWITCHV_WORKER_HOST_PATH
#define SWITCHV_WORKER_HOST_PATH ""
#endif

namespace switchv {
namespace {

// One model + replay state shared by every test in this file (mirrors
// EngineTest in engine_test.cc: building the SAI program and workload is
// comparatively expensive).
class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto model = models::BuildSaiProgram(models::Role::kMiddleblock);
    ASSERT_TRUE(model.ok()) << model.status();
    model_ = new p4ir::Program(*std::move(model));
    const p4ir::P4Info info = p4ir::P4Info::FromProgram(*model_);
    auto entries =
        models::GenerateEntries(info, models::Role::kMiddleblock,
                                ExperimentOptions::SmallWorkload(), /*seed=*/2);
    ASSERT_TRUE(entries.ok()) << entries.status();
    entries_ = new std::vector<p4rt::TableEntry>(*std::move(entries));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete entries_;
    model_ = nullptr;
    entries_ = nullptr;
  }

  void SetUp() override {
    if (std::string(SWITCHV_WORKER_HOST_PATH).empty() ||
        std::string(SWITCHV_SHARD_WORKER_PATH).empty()) {
      GTEST_SKIP() << "tool binaries not baked in";
    }
  }

  static CampaignOptions FastCampaign() {
    CampaignOptions options;
    options.seed = 7;
    options.control_plane_shards = 4;
    options.dataplane_shards = 2;
    options.control_plane.num_requests = 12;
    options.control_plane.updates_per_request = 40;
    options.dataplane.packet_out_ports = 2;
    return options;
  }

  // The recipe matching the fixture's model and entries exactly.
  static ShardScenario Scenario() {
    ShardScenario scenario;
    scenario.role = models::Role::kMiddleblock;
    scenario.workload = ExperimentOptions::SmallWorkload();
    scenario.entry_seed = 2;
    return scenario;
  }

  static CampaignOptions FleetCampaign(Fleet& fleet) {
    CampaignOptions options = FastCampaign();
    options.execution = CampaignOptions::Execution::kRemote;
    options.fleet = &fleet;
    options.scenario = Scenario();
    options.parallelism = 2;
    options.remote_host_max_failures = 1;
    return options;
  }

  static FleetOptions LocalFleet(int size) {
    FleetOptions options;
    options.backend = FleetOptions::Backend::kLocalProcess;
    options.size = size;
    options.host_binary = SWITCHV_WORKER_HOST_PATH;
    options.worker_binary = SWITCHV_SHARD_WORKER_PATH;
    options.host_extra_args = {"--heartbeat-interval=0.2"};
    return options;
  }

  static CampaignReport Run(const sut::FaultRegistry* faults,
                            const CampaignOptions& options) {
    return RunValidationCampaign(faults, *model_, models::SaiParserSpec(),
                                 *entries_, options);
  }

  static p4ir::Program* model_;
  static std::vector<p4rt::TableEntry>* entries_;
};

p4ir::Program* FleetTest::model_ = nullptr;
std::vector<p4rt::TableEntry>* FleetTest::entries_ = nullptr;

// Same deterministic projection as engine_test.cc: the byte-identity
// invariant is asserted by comparing these strings.
std::string RenderReport(const CampaignReport& report) {
  std::ostringstream out;
  out << "shards=" << report.shards_run
      << " fuzzed=" << report.fuzzed_updates
      << " packets=" << report.packets_tested
      << " targets=" << report.generation.targets_covered << "/"
      << report.generation.targets_total
      << " queries=" << report.generation.solver_queries << "\n";
  for (const IncidentGroup& group : report.groups) {
    out << "group " << group.fingerprint << " x" << group.occurrences
        << " shards=[";
    for (const int shard : group.shards) out << shard << ",";
    out << "] detector=" << DetectorName(group.exemplar.detector)
        << " layer=" << sut::SutLayerName(group.exemplar.layer)
        << " shard=" << group.exemplar.shard << "\n"
        << "summary: " << group.exemplar.summary << "\n"
        << "details: " << group.exemplar.details << "\n"
        << group.exemplar.replay_trace << "\n";
  }
  const MetricsSnapshot& m = report.metrics;
  out << "counts " << m.shards_completed << " " << m.updates_sent << " "
      << m.requests_sent << " " << m.generated_valid << " "
      << m.generated_invalid << " " << m.oracle_findings << " "
      << m.packets_tested << " " << m.solver_queries << " "
      << m.switch_writes << " " << m.switch_reads << " "
      << m.switch_packets_injected << " " << m.incidents_raised << " "
      << m.incidents_unique << "\n";
  out << "hists " << m.switch_write_hist.count << " " << m.oracle_hist.count
      << " " << m.reference_hist.count << " " << m.generation_hist.count
      << "\n";
  return out.str();
}

// The acceptance soak: a two-host authenticated fleet in which host 0 is
// SIGKILLed before the first shard is dispatched and host 1 is SIGKILLed
// mid-campaign by a background thread. Both kills retire the host at its
// first transport failure (max_failures=1); the dispatcher reprovisions
// through the fleet and reruns the interrupted shards on the replacements
// via the idempotent result path. None of it may show in the merged
// report: byte-identical to the in-process run, zero shards lost.
TEST_F(FleetTest, KillAndReprovisionSoakMatchesInProcessReport) {
  sut::FaultRegistry faults;
  faults.Activate(sut::Fault::kDeleteNonExistingFailsBatch);

  CampaignOptions local = FastCampaign();
  local.parallelism = 2;
  const CampaignReport in_process = Run(&faults, local);

  FleetOptions fleet_options = LocalFleet(2);
  fleet_options.auth_secret = "fleet-soak-secret";
  fleet_options.reprovision_budget = 4;
  Fleet fleet(fleet_options);
  const Status provisioned = fleet.Provision();
  ASSERT_TRUE(provisioned.ok()) << provisioned;
  const std::vector<Fleet::HostInfo> hosts = fleet.Hosts();
  ASSERT_EQ(hosts.size(), 2u);

  // Host 0 dies before the campaign ever dials it.
  ::kill(hosts[0].pid, SIGKILL);
  // Host 1 dies while the campaign is running (the parent's pre-phase
  // packet generation alone outlasts this timer, so the kill always lands
  // before the fleet drains; the pid is not reaped until the fleet
  // replaces or drains it, so it cannot be recycled underneath us).
  std::thread assassin([pid = hosts[1].pid] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    ::kill(pid, SIGKILL);
  });

  const CampaignReport remote = Run(&faults, FleetCampaign(fleet));
  assassin.join();

  EXPECT_GE(fleet.reprovisions(), 1);
  EXPECT_GE(remote.metrics.hosts_retired, 1u);
  EXPECT_EQ(remote.metrics.shards_lost, 0u);
  ASSERT_TRUE(in_process.bug_detected());
  EXPECT_EQ(RenderReport(in_process), RenderReport(remote));
}

// With the reprovision budget exhausted, a dead fleet degrades to the
// synthetic-harness incident path: lost shards attributed to the harness
// layer, never a crashed or hanging campaign.
TEST_F(FleetTest, BudgetExhaustionDegradesToHarnessIncidents) {
  FleetOptions fleet_options = LocalFleet(1);  // unauthenticated
  fleet_options.reprovision_budget = 0;
  Fleet fleet(fleet_options);
  const Status provisioned = fleet.Provision();
  ASSERT_TRUE(provisioned.ok()) << provisioned;

  ::kill(fleet.Hosts()[0].pid, SIGKILL);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  CampaignOptions options = FleetCampaign(fleet);
  options.run_dataplane = false;
  options.control_plane_shards = 2;
  options.shard_retries = 0;
  const CampaignReport report = Run(nullptr, options);

  EXPECT_EQ(fleet.reprovisions(), 0);
  EXPECT_EQ(report.shards_run, 2);
  EXPECT_EQ(report.metrics.shards_completed, 2u);
  EXPECT_EQ(report.metrics.shards_lost, 2u);
  ASSERT_EQ(report.groups.size(), 1u);
  const IncidentGroup& group = report.groups.front();
  EXPECT_EQ(group.exemplar.detector, Detector::kHarness);
  EXPECT_EQ(group.exemplar.layer, sut::SutLayer::kHarness);
  EXPECT_EQ(group.occurrences, 2);
}

// The command-template backend: the same worker host launched through
// `/bin/sh -c` with {host}/{port} substitution, health-checked through the
// identical bring-up gate, and torn down by Drain.
TEST_F(FleetTest, CommandTemplateBackendProvisionsAndDrains) {
  FleetOptions options;
  options.backend = FleetOptions::Backend::kCommandTemplate;
  options.size = 1;
  options.command_template = std::string(SWITCHV_WORKER_HOST_PATH) +
                             " --bind={host} --port={port} --worker=" +
                             SWITCHV_SHARD_WORKER_PATH;
  options.auth_secret = "template-secret";
  Fleet fleet(options);
  const Status provisioned = fleet.Provision();
  ASSERT_TRUE(provisioned.ok()) << provisioned;
  const std::vector<std::string> endpoints = fleet.Endpoints();
  ASSERT_EQ(endpoints.size(), 1u);

  EXPECT_TRUE(ProbeWorkerHost(endpoints[0], "template-secret", 5).ok());
  fleet.Drain();
  EXPECT_FALSE(ProbeWorkerHost(endpoints[0], "template-secret", 1).ok());
}

// Authentication is enforced at the door: a probe with the wrong secret
// (or no secret) is rejected before any shard payload crosses the wire,
// and the host keeps serving correctly-keyed clients afterwards.
TEST_F(FleetTest, WrongSecretProbeIsRejected) {
  FleetOptions fleet_options = LocalFleet(1);
  fleet_options.auth_secret = "the-right-secret";
  Fleet fleet(fleet_options);
  const Status provisioned = fleet.Provision();
  ASSERT_TRUE(provisioned.ok()) << provisioned;
  const std::string endpoint = fleet.Endpoints()[0];

  EXPECT_TRUE(ProbeWorkerHost(endpoint, "the-right-secret", 5).ok());
  EXPECT_FALSE(ProbeWorkerHost(endpoint, "the-wrong-secret", 5).ok());
  EXPECT_FALSE(ProbeWorkerHost(endpoint, "", 5).ok());
  // The host is not wedged by the rejected clients.
  EXPECT_TRUE(ProbeWorkerHost(endpoint, "the-right-secret", 5).ok());
}

}  // namespace
}  // namespace switchv
