#include <gtest/gtest.h>

#include "models/sai_model.h"
#include "p4runtime/entry_builder.h"
#include "p4runtime/decoded_entry.h"
#include "p4runtime/validator.h"

namespace switchv::p4rt {
namespace {

using models::BuildSaiProgram;
using models::Role;

class P4RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto program = BuildSaiProgram(Role::kMiddleblock);
    ASSERT_TRUE(program.ok()) << program.status();
    program_ = std::move(program).value();
    info_ = p4ir::P4Info::FromProgram(program_);
  }

  BitString U(uint128 v, int w) const { return BitString::FromUint(v, w); }

  StatusOr<TableEntry> VrfEntry(int vrf) const {
    return EntryBuilder(info_, "vrf_tbl")
        .Exact("vrf_id", U(vrf, models::kVrfWidth))
        .Action("no_action")
        .Build();
  }

  StatusOr<TableEntry> RouteEntry(int vrf, std::uint32_t dst, int plen,
                                  int nexthop) const {
    return EntryBuilder(info_, "ipv4_tbl")
        .Exact("vrf_id", U(vrf, models::kVrfWidth))
        .Lpm("ipv4_dst", U(dst, 32), plen)
        .Action("set_nexthop_id", {{"nexthop_id", U(nexthop, 16)}})
        .Build();
  }

  p4ir::Program program_;
  p4ir::P4Info info_;
};

TEST_F(P4RuntimeTest, ValidVrfEntryPasses) {
  auto entry = VrfEntry(1);
  ASSERT_TRUE(entry.ok()) << entry.status();
  EXPECT_TRUE(ValidateEntry(info_, *entry).ok());
}

TEST_F(P4RuntimeTest, Vrf0ViolatesEntryRestriction) {
  auto entry = VrfEntry(0);
  ASSERT_TRUE(entry.ok());
  // Syntactically fine...
  EXPECT_TRUE(ValidateEntrySyntax(info_, *entry).ok());
  // ...but not constraint compliant (paper Figure 3, entry v2).
  const Status status = ValidateEntry(info_, *entry);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("entry_restriction"), std::string::npos);
}

TEST_F(P4RuntimeTest, UnknownTableIdRejected) {
  auto entry = VrfEntry(1);
  ASSERT_TRUE(entry.ok());
  entry->table_id = 0x0BADF00D;
  EXPECT_EQ(ValidateEntrySyntax(info_, *entry).code(), StatusCode::kNotFound);
}

TEST_F(P4RuntimeTest, UnknownActionIdRejected) {
  auto entry = VrfEntry(1);
  ASSERT_TRUE(entry.ok());
  entry->action.direct.action_id = 0x0BADF00D;
  EXPECT_EQ(ValidateEntrySyntax(info_, *entry).code(), StatusCode::kNotFound);
}

TEST_F(P4RuntimeTest, OutOfScopeActionRejected) {
  // l3_admit is a real action, but not permitted in vrf_tbl
  // ("Invalid Table Action" mutation).
  auto entry = VrfEntry(1);
  ASSERT_TRUE(entry.ok());
  entry->action.direct.action_id = info_.FindActionByName("l3_admit")->id;
  const Status status = ValidateEntrySyntax(info_, *entry);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("not permitted"), std::string::npos);
}

TEST_F(P4RuntimeTest, MissingMandatoryExactMatchRejected) {
  auto entry = VrfEntry(1);
  ASSERT_TRUE(entry.ok());
  entry->matches.clear();
  const Status status = ValidateEntrySyntax(info_, *entry);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("mandatory"), std::string::npos);
}

TEST_F(P4RuntimeTest, DuplicateMatchFieldRejected) {
  auto entry = VrfEntry(1);
  ASSERT_TRUE(entry.ok());
  entry->matches.push_back(entry->matches[0]);
  const Status status = ValidateEntrySyntax(info_, *entry);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("duplicate"), std::string::npos);
}

TEST_F(P4RuntimeTest, NonCanonicalBytesRejected) {
  auto entry = VrfEntry(1);
  ASSERT_TRUE(entry.ok());
  entry->matches[0].value = std::string("\x00\x01", 2);  // leading zero
  EXPECT_EQ(ValidateEntrySyntax(info_, *entry).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(P4RuntimeTest, OverwideValueRejected) {
  auto entry = VrfEntry(1);
  ASSERT_TRUE(entry.ok());
  entry->matches[0].value = std::string("\xFF\xFF", 2);  // 16 bits into 12
  EXPECT_EQ(ValidateEntrySyntax(info_, *entry).code(),
            StatusCode::kOutOfRange);
}

TEST_F(P4RuntimeTest, LpmPrefixRules) {
  auto good = RouteEntry(1, 0x0A000000, 24, 5);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(ValidateEntrySyntax(info_, *good).ok());

  // Prefix length out of range.
  auto bad_len = RouteEntry(1, 0x0A000000, 33, 5);
  ASSERT_TRUE(bad_len.ok());
  EXPECT_FALSE(ValidateEntrySyntax(info_, *bad_len).ok());

  // Host bits set beyond the prefix.
  auto host_bits = RouteEntry(1, 0x0A000001, 24, 5);
  ASSERT_TRUE(host_bits.ok());
  const Status status = ValidateEntrySyntax(info_, *host_bits);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("outside the prefix"), std::string::npos);
}

TEST_F(P4RuntimeTest, PriorityRequiredForTernaryTables) {
  auto entry = EntryBuilder(info_, "acl_ingress_tbl")
                   .Ternary("ether_type", U(0x0806, 16),
                            BitString::AllOnes(16))
                   .Action("acl_trap")
                   .Build();
  ASSERT_TRUE(entry.ok());
  EXPECT_FALSE(ValidateEntrySyntax(info_, *entry).ok());  // priority 0
  entry->priority = 7;
  EXPECT_TRUE(ValidateEntrySyntax(info_, *entry).ok());
}

TEST_F(P4RuntimeTest, PriorityForbiddenForExactTables) {
  auto entry = VrfEntry(1);
  ASSERT_TRUE(entry.ok());
  entry->priority = 5;
  EXPECT_FALSE(ValidateEntrySyntax(info_, *entry).ok());
}

TEST_F(P4RuntimeTest, TernaryCanonicalFormEnforced) {
  // value & ~mask != 0 is non-canonical.
  auto entry = EntryBuilder(info_, "acl_ingress_tbl")
                   .Ternary("ether_type", U(0x0806, 16), U(0xFF00, 16))
                   .Priority(1)
                   .Action("acl_drop")
                   .Build();
  ASSERT_TRUE(entry.ok());
  const Status status = ValidateEntrySyntax(info_, *entry);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("canonical"), std::string::npos);
}

TEST_F(P4RuntimeTest, SelectorTableRequiresActionSet) {
  // Direct action on a WCMP table ("Invalid Table Implementation").
  auto entry = EntryBuilder(info_, "wcmp_group_tbl")
                   .Exact("wcmp_group_id", U(1, 16))
                   .Action("set_nexthop_id", {{"nexthop_id", U(1, 16)}})
                   .Build();
  ASSERT_TRUE(entry.ok());
  EXPECT_FALSE(ValidateEntrySyntax(info_, *entry).ok());
}

TEST_F(P4RuntimeTest, DirectTableRejectsActionSet) {
  auto entry = EntryBuilder(info_, "vrf_tbl")
                   .Exact("vrf_id", U(1, models::kVrfWidth))
                   .WeightedAction("no_action", 1)
                   .Build();
  ASSERT_TRUE(entry.ok());
  EXPECT_FALSE(ValidateEntrySyntax(info_, *entry).ok());
}

TEST_F(P4RuntimeTest, SelectorWeightMustBePositive) {
  auto entry = EntryBuilder(info_, "wcmp_group_tbl")
                   .Exact("wcmp_group_id", U(1, 16))
                   .WeightedAction("set_nexthop_id", 0,
                                   {{"nexthop_id", U(1, 16)}})
                   .Build();
  ASSERT_TRUE(entry.ok());
  const Status status = ValidateEntrySyntax(info_, *entry);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("positive"), std::string::npos);
}

TEST_F(P4RuntimeTest, SelectorGroupSizeAndWeightLimits) {
  EntryBuilder too_many(info_, "wcmp_group_tbl");
  too_many.Exact("wcmp_group_id", U(1, 16));
  for (int i = 0; i < 17; ++i) {  // max_group_size = 16
    too_many.WeightedAction("set_nexthop_id", 1, {{"nexthop_id", U(1, 16)}});
  }
  auto entry = too_many.Build();
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(ValidateEntrySyntax(info_, *entry).code(),
            StatusCode::kResourceExhausted);

  auto heavy = EntryBuilder(info_, "wcmp_group_tbl")
                   .Exact("wcmp_group_id", U(1, 16))
                   .WeightedAction("set_nexthop_id", 200,
                                   {{"nexthop_id", U(1, 16)}})
                   .Build();
  ASSERT_TRUE(heavy.ok());
  EXPECT_EQ(ValidateEntrySyntax(info_, *heavy).code(),
            StatusCode::kResourceExhausted);
}

TEST_F(P4RuntimeTest, WrongParamCountRejected) {
  auto entry = RouteEntry(1, 0x0A000000, 24, 5);
  ASSERT_TRUE(entry.ok());
  entry->action.direct.params.clear();
  EXPECT_FALSE(ValidateEntrySyntax(info_, *entry).ok());
}

TEST_F(P4RuntimeTest, KeyFingerprintIdentity) {
  auto a = RouteEntry(1, 0x0A000000, 24, 5);
  auto b = RouteEntry(1, 0x0A000000, 24, 99);  // different action
  auto c = RouteEntry(2, 0x0A000000, 24, 5);   // different vrf
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->KeyFingerprint(), b->KeyFingerprint());
  EXPECT_NE(a->KeyFingerprint(), c->KeyFingerprint());
  // Match order does not affect identity.
  TableEntry reordered = *a;
  std::swap(reordered.matches[0], reordered.matches[1]);
  EXPECT_EQ(a->KeyFingerprint(), reordered.KeyFingerprint());
}

TEST_F(P4RuntimeTest, DecodeEntryRoundTrip) {
  auto entry = RouteEntry(3, 0x0A010000, 16, 7);
  ASSERT_TRUE(entry.ok());
  auto decoded = DecodeEntry(info_, *entry);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->table_name, "ipv4_tbl");
  ASSERT_EQ(decoded->matches.size(), 2u);
  EXPECT_EQ(decoded->matches[0].value.ToUint64(), 3u);
  EXPECT_EQ(decoded->matches[1].value.ToUint64(), 0x0A010000u);
  EXPECT_EQ(decoded->matches[1].prefix_len, 16);
  ASSERT_EQ(decoded->actions.size(), 1u);
  EXPECT_EQ(decoded->actions[0].name, "set_nexthop_id");
  ASSERT_EQ(decoded->actions[0].args.size(), 1u);
  EXPECT_EQ(decoded->actions[0].args[0].ToUint64(), 7u);
}

TEST_F(P4RuntimeTest, EntryToStringIsReadable) {
  auto entry = RouteEntry(1, 0x0A000000, 24, 5);
  ASSERT_TRUE(entry.ok());
  const std::string text = entry->ToString(&info_);
  EXPECT_NE(text.find("ipv4_tbl"), std::string::npos);
  EXPECT_NE(text.find("set_nexthop_id"), std::string::npos);
}

}  // namespace
}  // namespace switchv::p4rt
