// Coverage-guided campaign wall (fuzzer/coverage.h). Registered under
// `ctest -L coverage`; part of the tier-1 default set and the ASan label
// list.
//
// Three contracts under test:
//   * Mechanics — the edge bitmap is deterministic (stable edge ids,
//     commutative/associative merge, saturating counts), the scheduler is
//     a pure function of (seed, observations), and the batch interpreter
//     attributes coverage identically to the scalar interpreter for every
//     lane, including demoted ones.
//   * Convergence — guided mode reaches a deep syncd/asic catalog fault
//     (kAclResourceLeak) in a fraction of the updates uniform mode needs,
//     pinned at a >= 2x median margin over a seed sweep.
//   * Conformance — guidance never changes *what* a campaign can report,
//     only how fast: the full fault-catalog sweep produces an identical
//     detected/detector/layer matrix and identical incident fingerprints
//     with guidance on vs off, in-process and in subprocess workers; and a
//     guidance-off campaign's wire bytes are identical to the pre-guidance
//     protocol (v1/v2 envelopes, no spec keys).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bmv2/batch_interpreter.h"
#include "fuzzer/coverage.h"
#include "fuzzer/mutation.h"
#include "models/entry_gen.h"
#include "models/sai_model.h"
#include "models/test_packets.h"
#include "switchv/experiment.h"
#include "switchv/shard_transport.h"
#include "switchv/telemetry.h"

// Baked in by tests/CMakeLists.txt; the subprocess sweep is skipped when
// the worker binary is unavailable (e.g. a hand-rolled compile).
#ifndef SWITCHV_SHARD_WORKER_PATH
#define SWITCHV_SHARD_WORKER_PATH ""
#endif

namespace switchv {
namespace {

using fuzzer::CoverageEdgeId;
using fuzzer::CoverageEdgeIdNamed;
using fuzzer::CoverageMap;
using fuzzer::CoverageNameId;
using fuzzer::CoverageScheduler;
using fuzzer::Guidance;
using fuzzer::GuidanceOptions;
using fuzzer::SeedDescriptor;

// ---------------------------------------------------------------------------
// Edge ids: pure functions of the tuple, so the same program point hashes
// to the same id in every process and shard. The literal pins freeze the
// hash scheme — changing it silently would invalidate every stored
// fingerprint and cross-run map comparison.
// ---------------------------------------------------------------------------

TEST(CoverageEdgeIdTest, IdsAreStableAndTupleSensitive) {
  const std::uint64_t id = CoverageEdgeId(17, 0x42, /*layer=*/3, false);
  EXPECT_EQ(id, CoverageEdgeId(17, 0x42, 3, false));  // pure
  EXPECT_NE(id, CoverageEdgeId(18, 0x42, 3, false));  // table matters
  EXPECT_NE(id, CoverageEdgeId(17, 0x43, 3, false));  // action matters
  EXPECT_NE(id, CoverageEdgeId(17, 0x42, 2, false));  // layer matters
  EXPECT_NE(id, CoverageEdgeId(17, 0x42, 3, true));   // failed-bit matters
}

TEST(CoverageEdgeIdTest, NamedEdgesUseTheReferenceLayerCoordinate) {
  // bmv2-reported edges live on their own layer coordinate (6, past the
  // SUT stack) so they can never collide structurally with control-plane
  // edges.
  EXPECT_EQ(CoverageEdgeIdNamed("ipv4_table", "set_nexthop"),
            CoverageEdgeId(CoverageNameId("ipv4_table"),
                           CoverageNameId("set_nexthop"), /*layer=*/6,
                           /*failed=*/false));
  EXPECT_NE(CoverageEdgeIdNamed("ipv4_table", "set_nexthop"),
            CoverageEdgeIdNamed("set_nexthop", "ipv4_table"));
}

TEST(CoverageEdgeIdTest, LiteralPins) {
  // FNV-1a 32 reference vectors (public test vectors for the algorithm).
  EXPECT_EQ(CoverageNameId(""), 0x811c9dc5u);
  EXPECT_EQ(CoverageNameId("a"), 0xe40c292cu);
  EXPECT_EQ(CoverageNameId("foobar"), 0xbf9cf968u);
  // Splitmix edge-id pins: frozen observed values of the current scheme.
  EXPECT_EQ(CoverageEdgeId(0, 0, 0, false), 0xd9f2cbb03fa998cdull);
  EXPECT_EQ(CoverageEdgeId(1, 2, 3, true), 0x0538849e23a09499ull);
}

// ---------------------------------------------------------------------------
// Map mechanics: saturating counts; merge is commutative and associative,
// so shard maps fold in any order (the campaign merges them in shard order
// only for reproducibility of the *report*, not correctness of the map).
// ---------------------------------------------------------------------------

TEST(CoverageMapTest, MarkCountsAndSaturates) {
  CoverageMap map;
  const std::uint64_t edge = CoverageEdgeId(3, 9, 2, false);
  EXPECT_EQ(map.CountAt(edge), 0);
  EXPECT_EQ(map.Mark(edge), 0);  // returns the pre-increment count
  EXPECT_EQ(map.Mark(edge), 1);
  EXPECT_EQ(map.CountAt(edge), 2);
  for (int i = 0; i < 600; ++i) map.Mark(edge);
  EXPECT_EQ(map.CountAt(edge), 255);  // saturates, no wraparound
  EXPECT_EQ(map.Mark(edge), 255);
  EXPECT_EQ(map.PopulatedEdges(), 1u);
  map.Clear();
  EXPECT_EQ(map.PopulatedEdges(), 0u);
}

TEST(CoverageMapTest, MergeIsCommutativeAndAssociative) {
  std::mt19937_64 rng(41);
  CoverageMap a, b, c;
  std::vector<std::uint64_t> edges;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t edge = rng();
    edges.push_back(edge);
    if (i % 2 == 0) a.Mark(edge);
    if (i % 3 == 0) b.Mark(edge);
    if (i % 5 == 0) for (int k = 0; k < 3; ++k) c.Mark(edge);
  }
  // (a + b) + c
  CoverageMap left = a;
  left.MergeFrom(b);
  left.MergeFrom(c);
  // c + (b + a)
  CoverageMap right = b;
  right.MergeFrom(a);
  CoverageMap outer = c;
  outer.MergeFrom(right);
  EXPECT_EQ(left.Fingerprint(), outer.Fingerprint());
  EXPECT_EQ(left.PopulatedEdges(), outer.PopulatedEdges());
  for (const std::uint64_t edge : edges) {
    ASSERT_EQ(left.CountAt(edge), outer.CountAt(edge));
  }
  // Identity: merging an empty map changes nothing.
  CoverageMap with_empty = left;
  with_empty.MergeFrom(CoverageMap());
  EXPECT_EQ(with_empty.Fingerprint(), left.Fingerprint());
}

TEST(CoverageMapTest, MergeSaturatesPerSlot) {
  CoverageMap a, b;
  const std::uint64_t edge = 12345;
  for (int i = 0; i < 200; ++i) a.Mark(edge);
  for (int i = 0; i < 200; ++i) b.Mark(edge);
  a.MergeFrom(b);
  EXPECT_EQ(a.CountAt(edge), 255);
}

// ---------------------------------------------------------------------------
// Scheduler: deterministic per seed, observe-only mode never steers,
// plateau falls back to uniform, and harvested seeds round-trip into a
// fresh scheduler (the cross-shard exchange primitive).
// ---------------------------------------------------------------------------

TEST(CoverageSchedulerTest, DrawSequenceIsDeterministicPerSeed) {
  GuidanceOptions options;
  auto feed = [](CoverageScheduler& scheduler) {
    for (std::uint32_t table = 1; table <= 6; ++table) {
      scheduler.RecordUpdate(table, table * 7, /*layer_mask=*/0x0f,
                             static_cast<int>(table % 3) - 1);
    }
    scheduler.EndBatch();
  };
  CoverageScheduler x(99, options), y(99, options), z(100, options);
  feed(x);
  feed(y);
  feed(z);
  ASSERT_TRUE(x.guided_active());
  bool diverged = false;
  for (int i = 0; i < 200; ++i) {
    const CoverageScheduler::Plan px = x.DrawPlan();
    const CoverageScheduler::Plan py = y.DrawPlan();
    const CoverageScheduler::Plan pz = z.DrawPlan();
    ASSERT_EQ(px.use_corpus, py.use_corpus) << "draw " << i;
    ASSERT_EQ(px.table_id, py.table_id) << "draw " << i;
    ASSERT_EQ(px.mutation, py.mutation) << "draw " << i;
    diverged = diverged || px.use_corpus != pz.use_corpus ||
               px.table_id != pz.table_id || px.mutation != pz.mutation;
  }
  // A different shard seed draws a different (still deterministic) stream.
  EXPECT_TRUE(diverged);
}

TEST(CoverageSchedulerTest, ObserveOnlyRecordsButNeverSteers) {
  GuidanceOptions observe;
  observe.plateau_batches = 0;  // observe-only mode
  CoverageScheduler scheduler(7, observe);
  for (int i = 0; i < 50; ++i) {
    scheduler.RecordUpdate(static_cast<std::uint32_t>(1 + i % 5), 11,
                           /*layer_mask=*/0x1f, -1);
  }
  scheduler.EndBatch();
  EXPECT_GT(scheduler.edges_total(), 0u);
  EXPECT_GT(scheduler.novelty_events(), 0u);
  // Coverage is recorded and exportable, but the generator must never ask
  // this scheduler for a plan.
  EXPECT_FALSE(scheduler.guided_active());
}

TEST(CoverageSchedulerTest, PlateauFallsBackToUniformAndNoveltyRevives) {
  GuidanceOptions options;
  options.plateau_batches = 3;
  CoverageScheduler scheduler(7, options);
  scheduler.RecordUpdate(4, 9, /*layer_mask=*/0x08, 2);
  EXPECT_TRUE(scheduler.guided_active());
  // Walk the edge's hit count past the low power-of-two buckets (counts
  // 2, 4, and 8 all land on crossings and would reset the plateau clock),
  // then run batches whose repeat hits are bucket-interior: no novelty,
  // so the plateau clock advances.
  for (int i = 0; i < 7; ++i) scheduler.RecordUpdate(4, 9, 0x08, 2);
  for (int batch = 0; batch < 3; ++batch) {
    scheduler.RecordUpdate(4, 9, 0x08, 2);
    scheduler.EndBatch();
  }
  EXPECT_FALSE(scheduler.guided_active()) << "plateau must fall back";
  // A genuinely new edge resets the plateau clock.
  scheduler.RecordUpdate(5, 10, 0x08, 1);
  EXPECT_TRUE(scheduler.guided_active());
}

TEST(CoverageSchedulerTest, HarvestedSeedsImportIntoAFreshScheduler) {
  GuidanceOptions options;
  CoverageScheduler source(21, options);
  source.RecordUpdate(3, 5, /*layer_mask=*/0x0f, -1);  // valid insert
  source.RecordUpdate(8, 2, /*layer_mask=*/0x1f, 4);   // mutation recipe
  const std::vector<SeedDescriptor> harvest = source.HarvestSeeds();
  ASSERT_EQ(harvest.size(), 2u);
  // Energy-sorted: the deeper (0x1f) recipe earned more credit.
  EXPECT_GE(harvest[0].energy, harvest[1].energy);

  CoverageScheduler sink(22, options);
  EXPECT_FALSE(sink.guided_active());  // empty corpus
  sink.ImportSeeds(harvest);
  // Imported seeds are a live corpus from the first draw: a campaign
  // seeded with a previous harvest starts guided, not cold.
  EXPECT_TRUE(sink.guided_active());
  const std::vector<SeedDescriptor> reexport = sink.HarvestSeeds();
  ASSERT_EQ(reexport.size(), harvest.size());
  for (const SeedDescriptor& seed : harvest) {
    EXPECT_NE(std::find(reexport.begin(), reexport.end(), seed),
              reexport.end());
  }
}

TEST(CoverageSchedulerTest, HarvestTruncatesToTopEnergy) {
  GuidanceOptions options;
  options.harvest_max = 4;
  CoverageScheduler scheduler(5, options);
  for (std::uint32_t table = 1; table <= 12; ++table) {
    // Deeper layers for higher tables => strictly increasing credit.
    scheduler.RecordUpdate(table, 1,
                           static_cast<std::uint8_t>((1u << (table % 5)) | 1),
                           -1);
  }
  const std::vector<SeedDescriptor> harvest = scheduler.HarvestSeeds();
  ASSERT_EQ(harvest.size(), 4u);
  for (std::size_t i = 1; i < harvest.size(); ++i) {
    EXPECT_GE(harvest[i - 1].energy, harvest[i].energy);
  }
}

// ---------------------------------------------------------------------------
// Batch-vs-scalar attribution: the 64-lane batch interpreter must put
// exactly the same (table, action) applications into a coverage sink as
// the scalar interpreter run lane by lane — for vectorized lanes, demoted
// lanes, and the full forced-fallback path. Equality is on map content
// (fingerprints), not event order: EnumerateBehaviorsBatch may interleave
// lanes across passes.
// ---------------------------------------------------------------------------

struct MapSink final : bmv2::CoverageSink {
  CoverageMap map;
  void OnTableApply(std::string_view table, std::string_view action) override {
    map.Mark(CoverageEdgeIdNamed(table, action));
  }
};

class BatchCoverageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto program = models::BuildSaiProgram(models::Role::kMiddleblock);
    ASSERT_TRUE(program.ok()) << program.status();
    program_ = std::move(program).value();
    info_ = p4ir::P4Info::FromProgram(program_);
    interpreter_ = std::make_unique<bmv2::Interpreter>(
        program_, models::SaiParserSpec(), models::DefaultCloneSessions());
    auto entries =
        models::GenerateEntries(info_, models::Role::kMiddleblock,
                                ExperimentOptions::SmallWorkload(),
                                /*seed=*/2);
    ASSERT_TRUE(entries.ok()) << entries.status();
    ASSERT_TRUE(interpreter_->InstallEntries(*entries).ok());
  }

  // Mixed corpus: routed/unrouted v4, v6, ARP, truncated, garbage — the
  // same families as the batch conformance wall, so divergent control flow
  // and scalar demotion both occur.
  std::vector<std::string> BuildCorpus(int count, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<std::string> corpus;
    corpus.reserve(static_cast<std::size_t>(count));
    const std::string donor =
        models::BuildIpv4Packet(program_, models::Ipv4PacketSpec{});
    for (int i = 0; i < count; ++i) {
      switch (i % 5) {
        case 0: {
          models::Ipv4PacketSpec spec;
          spec.dst_ip = static_cast<std::uint32_t>(rng());
          spec.ttl = static_cast<int>(rng() % 3 == 0 ? rng() % 2 : 64);
          corpus.push_back(models::BuildIpv4Packet(program_, spec));
          break;
        }
        case 1: {
          models::Ipv6PacketSpec spec;
          spec.dst_ip = (static_cast<uint128>(rng()) << 64) | rng();
          corpus.push_back(models::BuildIpv6Packet(program_, spec));
          break;
        }
        case 2:
          corpus.push_back(models::BuildArpPacket(program_));
          break;
        case 3:
          corpus.push_back(donor.substr(0, rng() % (donor.size() + 1)));
          break;
        default: {
          models::Ipv4PacketSpec spec;
          spec.dst_ip = 0x0A000000u | static_cast<std::uint32_t>(rng() % 256);
          corpus.push_back(models::BuildIpv4Packet(program_, spec));
          break;
        }
      }
    }
    return corpus;
  }

  static std::vector<bmv2::BatchInterpreter::LanePacket> Lanes(
      const std::vector<std::string>& corpus) {
    std::vector<bmv2::BatchInterpreter::LanePacket> lanes;
    lanes.reserve(corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      lanes.push_back({corpus[i], static_cast<std::uint16_t>(1 + i % 8)});
    }
    return lanes;
  }

  // The scalar reference attribution: one Run per lane into a fresh sink.
  CoverageMap ScalarRunMap(
      const std::vector<bmv2::BatchInterpreter::LanePacket>& lanes,
      std::uint64_t hash_seed) {
    MapSink sink;
    interpreter_->set_coverage_sink(&sink);
    for (const auto& lane : lanes) {
      (void)interpreter_->Run(lane.bytes, lane.ingress_port, hash_seed);
    }
    interpreter_->set_coverage_sink(nullptr);
    return sink.map;
  }

  p4ir::Program program_;
  p4ir::P4Info info_;
  std::unique_ptr<bmv2::Interpreter> interpreter_;
};

TEST_F(BatchCoverageTest, RunBatchAttributionMatchesScalarAcrossSizes) {
  bmv2::BatchInterpreter batch(*interpreter_);
  for (const int size : {1, 3, 63, 64, 65, 130}) {
    SCOPED_TRACE("size " + std::to_string(size));
    // LanePacket holds string_views: the corpus must outlive the lanes.
    const auto corpus = BuildCorpus(size, static_cast<std::uint64_t>(size));
    const auto lanes = Lanes(corpus);
    const CoverageMap scalar = ScalarRunMap(lanes, /*hash_seed=*/5);

    MapSink sink;
    batch.set_coverage_sink(&sink);
    (void)batch.RunBatch64(lanes, /*hash_seed=*/5);
    batch.set_coverage_sink(nullptr);

    EXPECT_EQ(sink.map.Fingerprint(), scalar.Fingerprint());
    EXPECT_EQ(sink.map.PopulatedEdges(), scalar.PopulatedEdges());
    EXPECT_GT(sink.map.PopulatedEdges(), 0u);
  }
  EXPECT_GT(batch.stats().lanes_run, 0u);  // the vector path actually ran
}

TEST_F(BatchCoverageTest, ForcedFallbackAttributionMatchesScalar) {
  bmv2::BatchInterpreter batch(*interpreter_);
  const auto corpus = BuildCorpus(70, /*seed=*/9);
  const auto lanes = Lanes(corpus);
  const CoverageMap scalar = ScalarRunMap(lanes, /*hash_seed=*/3);

  batch.set_force_scalar_fallback(true);
  MapSink sink;
  batch.set_coverage_sink(&sink);
  (void)batch.RunBatch64(lanes, /*hash_seed=*/3);
  batch.set_coverage_sink(nullptr);

  EXPECT_EQ(batch.stats().scalar_fallbacks, lanes.size());
  EXPECT_EQ(sink.map.Fingerprint(), scalar.Fingerprint());
}

TEST_F(BatchCoverageTest, EnumerateBehaviorsAttributionMatchesScalar) {
  bmv2::BatchInterpreter batch(*interpreter_);
  const auto corpus = BuildCorpus(70, /*seed=*/33);
  const auto lanes = Lanes(corpus);

  MapSink scalar_sink;
  interpreter_->set_coverage_sink(&scalar_sink);
  for (const auto& lane : lanes) {
    (void)interpreter_->EnumerateBehaviors(lane.bytes, lane.ingress_port);
  }
  interpreter_->set_coverage_sink(nullptr);

  MapSink batch_sink;
  batch.set_coverage_sink(&batch_sink);
  (void)batch.EnumerateBehaviorsBatch(lanes);
  batch.set_coverage_sink(nullptr);

  EXPECT_EQ(batch_sink.map.Fingerprint(), scalar_sink.map.Fingerprint());
  EXPECT_EQ(batch_sink.map.PopulatedEdges(),
            scalar_sink.map.PopulatedEdges());
  EXPECT_GT(batch_sink.map.PopulatedEdges(), 0u);
}

// ---------------------------------------------------------------------------
// Wire conformance: guidance rides the shard spec and the request envelope
// only when it is on. Off = byte-identical to the pre-guidance protocol.
// ---------------------------------------------------------------------------

TEST(CoverageWireTest, GuidanceOffSpecAndResultCarryNoNewBytes) {
  WireShardSpec spec;
  spec.kind = WireShardSpec::Kind::kControlPlane;
  spec.scenario.role = models::Role::kMiddleblock;
  spec.scenario.workload = ExperimentOptions::SmallWorkload();
  const std::string line = SerializeShardSpec(spec);
  EXPECT_EQ(line.find("guidance"), std::string::npos);
  EXPECT_EQ(line.find("coverage_observe"), std::string::npos);

  WireShardResult result;
  const std::string result_line = SerializeShardResult(result);
  EXPECT_EQ(result_line.find("\"seeds\""), std::string::npos);
}

TEST(CoverageWireTest, SpecRoundTripCarriesGuidance) {
  WireShardSpec spec;
  spec.kind = WireShardSpec::Kind::kControlPlane;
  spec.scenario.role = models::Role::kMiddleblock;
  spec.scenario.workload = ExperimentOptions::SmallWorkload();
  spec.control_plane.guidance = Guidance::kCoverage;
  spec.control_plane.guidance_options.exploration = 0.25;
  spec.control_plane.guidance_options.plateau_batches = 7;
  spec.control_plane.guidance_options.corpus_max = 99;
  spec.control_plane.guidance_options.harvest_max = 5;
  spec.control_plane.guidance_seeds = {
      {/*table_id=*/0x02000033u, /*mutation=*/-1, /*energy=*/40},
      {/*table_id=*/0x02000034u, /*mutation=*/11, /*energy=*/3},
  };
  spec.dataplane.coverage_observe = true;

  auto parsed = ParseShardSpec(SerializeShardSpec(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->control_plane.guidance, Guidance::kCoverage);
  EXPECT_EQ(parsed->control_plane.guidance_options.exploration, 0.25);
  EXPECT_EQ(parsed->control_plane.guidance_options.plateau_batches, 7);
  EXPECT_EQ(parsed->control_plane.guidance_options.corpus_max, 99);
  EXPECT_EQ(parsed->control_plane.guidance_options.harvest_max, 5);
  EXPECT_EQ(parsed->control_plane.guidance_seeds,
            spec.control_plane.guidance_seeds);
  EXPECT_TRUE(parsed->dataplane.coverage_observe);
}

TEST(CoverageWireTest, ResultRoundTripCarriesSeeds) {
  WireShardResult result;
  result.index = 2;
  result.fuzzed_updates = 10;
  result.seeds = {
      {/*table_id=*/7u, /*mutation=*/4, /*energy=*/123},
      {/*table_id=*/9u, /*mutation=*/-1, /*energy=*/1},
  };
  auto parsed = ParseShardResult(SerializeShardResult(result));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->seeds, result.seeds);
}

TEST(CoverageWireTest, RequestEnvelopeVersionsArePinned) {
  RemoteShardRequest request;
  request.campaign_id = 7;
  request.shard = 3;
  request.attempt = 1;
  request.timeout_seconds = 120;
  request.spec_line = "spec";
  // Guidance off, telemetry off: the exact v1 bytes of the original
  // protocol — a guidance-off campaign is indistinguishable on the wire.
  EXPECT_EQ(SerializeRemoteRequest(request),
            "switchv-shard-request 1 7 3 1 120\nspec");
  // Guidance off, telemetry on: the exact v2 bytes of the telemetry
  // protocol revision.
  request.telemetry_interval_seconds = 0.5;
  EXPECT_EQ(SerializeRemoteRequest(request),
            "switchv-shard-request 2 7 3 1 120 0.5\nspec");
  // Guidance on upgrades to v3: interval (0 allowed) then guidance.
  request.telemetry_interval_seconds = 0;
  request.guidance = static_cast<int>(Guidance::kCoverage);
  EXPECT_EQ(SerializeRemoteRequest(request),
            "switchv-shard-request 3 7 3 1 120 0 1\nspec");

  auto parsed = ParseRemoteRequest(SerializeRemoteRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->guidance, 1);
  EXPECT_EQ(parsed->telemetry_interval_seconds, 0);
  EXPECT_EQ(parsed->spec_line, "spec");
}

TEST(CoverageWireTest, MalformedEnvelopesAreRejected) {
  // v3 requires a positive guidance value...
  EXPECT_FALSE(
      ParseRemoteRequest("switchv-shard-request 3 7 3 1 120 0 0\nspec").ok());
  // ...and a non-negative interval.
  EXPECT_FALSE(
      ParseRemoteRequest("switchv-shard-request 3 7 3 1 120 -1 1\nspec").ok());
  // v2 still requires a positive interval (it exists only to carry one).
  EXPECT_FALSE(
      ParseRemoteRequest("switchv-shard-request 2 7 3 1 120 0\nspec").ok());
  // v1 must not carry trailing fields.
  EXPECT_FALSE(
      ParseRemoteRequest("switchv-shard-request 4 7 3 1 120\nspec").ok());
}

// ---------------------------------------------------------------------------
// Campaign-level determinism and export: a guided campaign is a pure
// function of (options, seed) — parallelism 1 and N produce identical
// reports, coverage counters, and harvested seeds — and the counters flow
// through every export surface.
// ---------------------------------------------------------------------------

class CoverageCampaignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto model = models::BuildSaiProgram(models::Role::kMiddleblock);
    ASSERT_TRUE(model.ok()) << model.status();
    model_ = new p4ir::Program(*std::move(model));
    info_ = new p4ir::P4Info(p4ir::P4Info::FromProgram(*model_));
    auto entries =
        models::GenerateEntries(*info_, models::Role::kMiddleblock,
                                ExperimentOptions::SmallWorkload(),
                                /*seed=*/2);
    ASSERT_TRUE(entries.ok()) << entries.status();
    entries_ = new std::vector<p4rt::TableEntry>(*std::move(entries));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete info_;
    delete entries_;
    model_ = nullptr;
    info_ = nullptr;
    entries_ = nullptr;
  }

  static CampaignOptions GuidedCampaign() {
    CampaignOptions options;
    options.seed = 5;
    options.run_dataplane = false;
    options.control_plane_shards = 3;
    options.control_plane.num_requests = 12;
    options.control_plane.updates_per_request = 30;
    options.guidance = Guidance::kCoverage;
    return options;
  }

  static CampaignReport Run(const sut::FaultRegistry* faults,
                            const CampaignOptions& options) {
    return RunValidationCampaign(faults, *model_, models::SaiParserSpec(),
                                 *entries_, options);
  }

  static p4ir::Program* model_;
  static p4ir::P4Info* info_;
  static std::vector<p4rt::TableEntry>* entries_;
};

p4ir::Program* CoverageCampaignTest::model_ = nullptr;
p4ir::P4Info* CoverageCampaignTest::info_ = nullptr;
std::vector<p4rt::TableEntry>* CoverageCampaignTest::entries_ = nullptr;

TEST_F(CoverageCampaignTest, GuidedReportIsIdenticalForParallelism1AndN) {
  sut::FaultRegistry faults;
  faults.Activate(sut::Fault::kDeleteNonExistingFailsBatch);

  CampaignOptions sequential = GuidedCampaign();
  sequential.parallelism = 1;
  const CampaignReport one = Run(&faults, sequential);

  CampaignOptions parallel = GuidedCampaign();
  parallel.parallelism = 4;
  const CampaignReport many = Run(&faults, parallel);

  EXPECT_EQ(one.FingerprintSet(), many.FingerprintSet());
  EXPECT_FALSE(one.groups.empty());
  EXPECT_EQ(one.fuzzed_updates, many.fuzzed_updates);
  EXPECT_EQ(one.harvested_seeds, many.harvested_seeds);
  EXPECT_FALSE(one.harvested_seeds.empty());
  EXPECT_EQ(one.metrics.coverage_edges_total,
            many.metrics.coverage_edges_total);
  EXPECT_EQ(one.metrics.coverage_new_edges, many.metrics.coverage_new_edges);
  EXPECT_EQ(one.metrics.seeds_exchanged, many.metrics.seeds_exchanged);
  EXPECT_GT(one.metrics.coverage_edges_total, 0u);
  EXPECT_GT(one.metrics.coverage_new_edges, 0u);
  EXPECT_EQ(one.metrics.seeds_exchanged, one.harvested_seeds.size());
}

TEST_F(CoverageCampaignTest, HarvestedSeedsFanOutIntoAFollowUpCampaign) {
  const CampaignReport first = Run(nullptr, GuidedCampaign());
  ASSERT_FALSE(first.harvested_seeds.empty());

  // Cross-campaign exchange: a second campaign imports the harvest and is
  // still deterministic across parallelism.
  CampaignOptions next = GuidedCampaign();
  next.seed = 6;
  next.guidance_seeds = first.harvested_seeds;
  const CampaignReport a = Run(nullptr, next);
  next.parallelism = 4;
  const CampaignReport b = Run(nullptr, next);
  EXPECT_EQ(a.FingerprintSet(), b.FingerprintSet());
  EXPECT_EQ(a.fuzzed_updates, b.fuzzed_updates);
  EXPECT_EQ(a.harvested_seeds, b.harvested_seeds);
}

TEST_F(CoverageCampaignTest, CountersFlowThroughEveryExportSurface) {
  CampaignTelemetry telemetry;
  CampaignOptions options = GuidedCampaign();
  options.telemetry = &telemetry;
  const CampaignReport report = Run(nullptr, options);

  const MetricsSnapshot& m = report.metrics;
  EXPECT_GT(m.coverage_edges_total, 0u);
  EXPECT_GT(m.coverage_new_edges, 0u);
  EXPECT_GT(m.seeds_exchanged, 0u);
  EXPECT_NE(m.ToString().find("coverage:"), std::string::npos);
  EXPECT_NE(m.ToPrometheus().find("switchv_coverage_edges_total"),
            std::string::npos);
  EXPECT_NE(m.ToPrometheus().find("switchv_coverage_new_edges_total"),
            std::string::npos);
  EXPECT_NE(m.ToPrometheus().find("switchv_seeds_exchanged_total"),
            std::string::npos);
  EXPECT_NE(m.ToJson().find("\"coverage_edges_total\""), std::string::npos);
  EXPECT_NE(m.ToWireJson().find("\"coverage_new_edges\""), std::string::npos);
  // The merge journals one seeds-exchanged event per harvesting shard.
  EXPECT_GT(telemetry.journal().CountKind(JournalEventKind::kSeedsExchanged),
            0u);
}

TEST_F(CoverageCampaignTest, UniformCampaignReportsNoCoverage) {
  CampaignOptions options = GuidedCampaign();
  options.guidance = Guidance::kUniform;
  const CampaignReport report = Run(nullptr, options);
  EXPECT_EQ(report.metrics.coverage_edges_total, 0u);
  EXPECT_EQ(report.metrics.coverage_new_edges, 0u);
  EXPECT_EQ(report.metrics.seeds_exchanged, 0u);
  EXPECT_TRUE(report.harvested_seeds.empty());
}

// ---------------------------------------------------------------------------
// Convergence wall: the reason guidance exists. kAclResourceLeak
// (syncd/SAI layer, surfaces at the ASIC) needs a long run of *successful*
// ACL inserts before the leaked TCAM slots exhaust capacity — uniform
// fuzzing spreads its draws over every table, guided fuzzing concentrates
// on the recipes that keep reaching new deep edges. Median
// updates-to-detection over a seed sweep must favour guided by >= 2x.
// ---------------------------------------------------------------------------

class CoverageConvergenceTest : public CoverageCampaignTest {};

TEST_F(CoverageConvergenceTest, GuidedReachesDeepAclFaultTwiceAsFast) {
  sut::FaultRegistry faults;
  faults.Activate(sut::Fault::kAclResourceLeak);

  auto updates_to_detection = [&](std::uint64_t seed, Guidance guidance) {
    CampaignOptions options;
    options.seed = seed;
    options.run_dataplane = false;
    options.control_plane.num_requests = 150;
    options.control_plane.updates_per_request = 20;
    options.control_plane.max_incidents = 1;  // stop at first detection
    options.guidance = guidance;
    const CampaignReport report = Run(&faults, options);
    EXPECT_TRUE(report.bug_detected())
        << "seed " << seed << " guidance " << static_cast<int>(guidance)
        << ": fault not detected within the update budget";
    return report.fuzzed_updates;
  };

  std::vector<int> uniform, guided;
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    uniform.push_back(updates_to_detection(seed, Guidance::kUniform));
    guided.push_back(updates_to_detection(seed, Guidance::kCoverage));
  }
  auto median = [](std::vector<int> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const int uniform_median = median(uniform);
  const int guided_median = median(guided);
  std::ostringstream sweep;
  for (std::size_t i = 0; i < uniform.size(); ++i) {
    sweep << " seed" << i << "=" << uniform[i] << "/" << guided[i];
  }
  EXPECT_GE(uniform_median, 2 * guided_median)
      << "uniform median " << uniform_median << " vs guided median "
      << guided_median << " (uniform/guided per seed:" << sweep.str() << ")";
}

// ---------------------------------------------------------------------------
// Conformance pin: guidance changes how fast a campaign finds bugs, never
// what it can find. The full fault catalog, swept guidance-on and
// guidance-off, must produce the identical fault-detected/layer matrix;
// guided may first-detect at the same or an *earlier* pipeline stage
// (fuzzer before symbolic before harness), never a later one; and on
// every detected fault the two sweeps must share at least one incident
// class under the same dedup fingerprint — two different update streams
// legitimately surface different *secondary* classes of a fault (a
// guided stream hammers the hot table and finds extras there while the
// uniform stream's diversity finds extras elsewhere), but the same
// divergence must dedup into the same class in both modes. Checked
// in-process and under subprocess workers (which exercise the guidance
// spec keys end to end).
// ---------------------------------------------------------------------------

struct SweepCell {
  bool detected = false;
  std::optional<Detector> detector;
  sut::SutLayer layer = sut::SutLayer::kNone;
  std::set<std::uint64_t> fingerprints;
};

std::vector<SweepCell> Cells(const std::vector<BugRunResult>& results) {
  std::vector<SweepCell> cells;
  cells.reserve(results.size());
  for (const BugRunResult& result : results) {
    SweepCell cell;
    cell.detected = result.detected;
    cell.detector = result.detector;
    if (!result.report.incidents.empty()) {
      cell.layer = result.report.incidents.front().layer;
    }
    for (const IncidentGroup& group : result.report.groups) {
      cell.fingerprints.insert(group.fingerprint);
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

ExperimentOptions SweepOptions(Guidance guidance) {
  ExperimentOptions options;
  options.nightly.control_plane.num_requests = 12;
  options.nightly.control_plane.updates_per_request = 40;
  options.nightly.dataplane.packet_out_ports = 2;
  options.nightly.guidance = guidance;
  return options;
}

void ExpectSweepsConform(const std::vector<BugRunResult>& on,
                         const std::vector<BugRunResult>& off) {
  ASSERT_EQ(on.size(), off.size());
  ASSERT_EQ(on.size(), sut::BugCatalog().size());
  const std::vector<SweepCell> cells_on = Cells(on);
  const std::vector<SweepCell> cells_off = Cells(off);
  for (std::size_t i = 0; i < on.size(); ++i) {
    SCOPED_TRACE(on[i].bug->name);
    ASSERT_EQ(on[i].bug->fault, off[i].bug->fault);
    EXPECT_EQ(cells_on[i].detected, cells_off[i].detected);
    EXPECT_EQ(cells_on[i].layer, cells_off[i].layer);
    // Guided may first-detect at an earlier pipeline stage (its stream
    // reaches the triggering recipe sooner), never a later one.
    EXPECT_EQ(cells_on[i].detector.has_value(),
              cells_off[i].detector.has_value());
    if (cells_on[i].detector.has_value() &&
        cells_off[i].detector.has_value()) {
      EXPECT_LE(static_cast<int>(*cells_on[i].detector),
                static_cast<int>(*cells_off[i].detector))
          << "guided first-detected via "
          << DetectorName(*cells_on[i].detector)
          << " which runs after the uniform sweep's "
          << DetectorName(*cells_off[i].detector);
    }
    // Fingerprint stability across modes: the sweeps must agree on at
    // least one incident class per detected fault.
    std::set<std::uint64_t> shared;
    std::set_intersection(
        cells_on[i].fingerprints.begin(), cells_on[i].fingerprints.end(),
        cells_off[i].fingerprints.begin(), cells_off[i].fingerprints.end(),
        std::inserter(shared, shared.begin()));
    EXPECT_EQ(shared.empty(), cells_off[i].fingerprints.empty())
        << "guided and uniform sweeps share no incident class (guided "
        << cells_on[i].fingerprints.size() << " classes, uniform "
        << cells_off[i].fingerprints.size() << ")";
  }
}

TEST(CoverageConformanceTest, GuidedSweepMatrixMatchesUniformInProcess) {
  auto guided = RunFullSweep(SweepOptions(Guidance::kCoverage));
  ASSERT_TRUE(guided.ok()) << guided.status();
  auto uniform = RunFullSweep(SweepOptions(Guidance::kUniform));
  ASSERT_TRUE(uniform.ok()) << uniform.status();
  ExpectSweepsConform(*guided, *uniform);
}

TEST(CoverageConformanceTest, GuidedSweepMatrixMatchesUniformInSubprocess) {
  if (std::string(SWITCHV_SHARD_WORKER_PATH).empty()) {
    GTEST_SKIP() << "shard worker binary not baked in";
  }
  ExperimentOptions guided_options = SweepOptions(Guidance::kCoverage);
  guided_options.nightly.execution = CampaignOptions::Execution::kSubprocess;
  guided_options.nightly.worker_binary = SWITCHV_SHARD_WORKER_PATH;
  auto guided = RunFullSweep(guided_options);
  ASSERT_TRUE(guided.ok()) << guided.status();

  ExperimentOptions uniform_options = SweepOptions(Guidance::kUniform);
  uniform_options.nightly.execution = CampaignOptions::Execution::kSubprocess;
  uniform_options.nightly.worker_binary = SWITCHV_SHARD_WORKER_PATH;
  auto uniform = RunFullSweep(uniform_options);
  ASSERT_TRUE(uniform.ok()) << uniform.status();
  ExpectSweepsConform(*guided, *uniform);

  // Substrate conformance within guided mode: the spec's guidance keys
  // crossed the wire, and the subprocess sweep matches the in-process one.
  auto in_process = RunFullSweep(SweepOptions(Guidance::kCoverage));
  ASSERT_TRUE(in_process.ok()) << in_process.status();
  ExpectSweepsConform(*guided, *in_process);
}

}  // namespace
}  // namespace switchv
