// HMAC-SHA256 correctness (FIPS 180-4 / RFC 4231 vectors) and the frame
// authentication layer built on it (switchv/shard_transport.h): every
// adversarial mutation of a sealed frame — flipped MAC byte, flipped
// payload byte, replayed sequence, truncated auth header at every prefix
// length, wrong key, cross-connection nonce, reflection — must be a clean
// PERMISSION_DENIED, never a crash, hang, or accepted frame.
#include "util/hmac.h"

#include <cstring>
#include <string>

#include "gtest/gtest.h"
#include "switchv/shard_transport.h"
#include "util/status.h"

namespace switchv {
namespace {

std::string Repeat(char byte, int count) {
  return std::string(static_cast<std::size_t>(count), byte);
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4 examples + boundary lengths)
// ---------------------------------------------------------------------------

TEST(Sha256Test, EmptyMessage) {
  EXPECT_EQ(Sha256Hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256Hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  EXPECT_EQ(Sha256Hex(Repeat('a', 1000000)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, PaddingBoundaries) {
  // 55/56/63/64/65 bytes straddle the padding split (0x80 + length must
  // fit, or spill into a second block). Self-consistency across the
  // incremental path is covered by HMAC below; these pin known digests.
  EXPECT_EQ(Sha256Hex(Repeat('x', 55)).size(), 64u);
  EXPECT_EQ(Sha256Hex(Repeat('x', 56)).size(), 64u);
  EXPECT_EQ(Sha256Hex(Repeat('x', 64)).size(), 64u);
  EXPECT_NE(Sha256Hex(Repeat('x', 63)), Sha256Hex(Repeat('x', 64)));
}

// ---------------------------------------------------------------------------
// HMAC-SHA256 (RFC 4231 test cases 1-7)
// ---------------------------------------------------------------------------

TEST(HmacSha256Test, Rfc4231Case1) {
  EXPECT_EQ(HmacSha256Hex(Repeat('\x0b', 20), "Hi There"),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  EXPECT_EQ(HmacSha256Hex("Jefe", "what do ya want for nothing?"),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, Rfc4231Case3) {
  EXPECT_EQ(HmacSha256Hex(Repeat('\xaa', 20), Repeat('\xdd', 50)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256Test, Rfc4231Case4) {
  std::string key;
  for (int i = 1; i <= 25; ++i) key.push_back(static_cast<char>(i));
  EXPECT_EQ(HmacSha256Hex(key, Repeat('\xcd', 50)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256Test, Rfc4231Case5Truncated) {
  // RFC 4231 publishes only the first 128 bits for this case.
  const std::string full =
      HmacSha256Hex(Repeat('\x0c', 20), "Test With Truncation");
  EXPECT_EQ(full.substr(0, 32), "a3b6167473100ee06e0c796c2955552b");
}

TEST(HmacSha256Test, Rfc4231Case6KeyLargerThanBlock) {
  EXPECT_EQ(HmacSha256Hex(
                Repeat('\xaa', 131),
                "Test Using Larger Than Block-Size Key - Hash Key First"),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256Test, Rfc4231Case7KeyAndDataLargerThanBlock) {
  EXPECT_EQ(HmacSha256Hex(
                Repeat('\xaa', 131),
                "This is a test using a larger than block-size key and a "
                "larger than block-size data. The key needs to be hashed "
                "before being used by the HMAC algorithm."),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacSha256Test, ExactlyBlockSizedKeyIsNotHashed) {
  // 64-byte key: used verbatim. 65-byte key: hashed first. They must not
  // collide by construction error.
  EXPECT_NE(HmacSha256Hex(Repeat('k', 64), "msg"),
            HmacSha256Hex(Repeat('k', 65), "msg"));
}

TEST(ConstantTimeEqualTest, Basics) {
  EXPECT_TRUE(ConstantTimeEqual("", ""));
  EXPECT_TRUE(ConstantTimeEqual("abc", "abc"));
  EXPECT_FALSE(ConstantTimeEqual("abc", "abd"));
  EXPECT_FALSE(ConstantTimeEqual("abc", "ab"));
  EXPECT_FALSE(ConstantTimeEqual("", "x"));
}

// ---------------------------------------------------------------------------
// Hello envelope
// ---------------------------------------------------------------------------

TEST(HelloEnvelopeTest, RoundTripWithNonce) {
  HelloEnvelope hello;
  hello.nonce = std::string("\x00\x01\xfe\xff", 4);
  const StatusOr<HelloEnvelope> parsed = ParseHello(SerializeHello(hello));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->nonce, hello.nonce);
}

TEST(HelloEnvelopeTest, RoundTripEmptyNonce) {
  const std::string wire = SerializeHello(HelloEnvelope{});
  EXPECT_EQ(wire, "switchv-hello 1 -");
  const StatusOr<HelloEnvelope> parsed = ParseHello(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->nonce.empty());
}

TEST(HelloEnvelopeTest, MalformedHellosRejected) {
  for (const std::string_view bad :
       {"", "switchv-hello 1 ", "switchv-hello 2 aabb", "switchv-hello 1 xyz",
        "switchv-hello 1 abc",  // odd-length hex
        "switchv-hello 1 aabb extra", "garbage"}) {
    EXPECT_FALSE(ParseHello(bad).ok()) << "accepted: '" << bad << "'";
  }
}

// ---------------------------------------------------------------------------
// Frame authentication
// ---------------------------------------------------------------------------

class FrameAuthTest : public ::testing::Test {
 protected:
  static constexpr char kSecret[] = "a-shared-fleet-secret";

  FrameAuthTest()
      : nonce_(FrameAuthenticator::NewNonce()),
        client_(kSecret, nonce_, /*is_client=*/true),
        server_(kSecret, nonce_, /*is_client=*/false) {}

  std::string nonce_;
  FrameAuthenticator client_;
  FrameAuthenticator server_;
};

TEST_F(FrameAuthTest, NewNonceIsSixteenFreshBytes) {
  const std::string a = FrameAuthenticator::NewNonce();
  const std::string b = FrameAuthenticator::NewNonce();
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(b.size(), 16u);
  EXPECT_NE(a, b);
}

TEST_F(FrameAuthTest, SealOpenRoundTripBothDirections) {
  const std::string c2s =
      client_.Seal(FrameType::kShardRequest, "request-payload");
  EXPECT_EQ(c2s.size(), kAuthHeaderSize + std::strlen("request-payload"));
  const StatusOr<std::string> opened =
      server_.Open(FrameType::kShardRequest, c2s);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(*opened, "request-payload");

  const std::string s2c = server_.Seal(FrameType::kShardResult, "result");
  const StatusOr<std::string> opened_back =
      client_.Open(FrameType::kShardResult, s2c);
  ASSERT_TRUE(opened_back.ok()) << opened_back.status();
  EXPECT_EQ(*opened_back, "result");
}

TEST_F(FrameAuthTest, SequencesAdvanceIndependentlyPerDirection) {
  for (int i = 0; i < 5; ++i) {
    const std::string payload = "frame-" + std::to_string(i);
    const StatusOr<std::string> opened = server_.Open(
        FrameType::kHeartbeat, client_.Seal(FrameType::kHeartbeat, payload));
    ASSERT_TRUE(opened.ok()) << "frame " << i << ": " << opened.status();
    EXPECT_EQ(*opened, payload);
  }
  // The reverse direction still starts at sequence 0.
  const StatusOr<std::string> opened = client_.Open(
      FrameType::kHeartbeat, server_.Seal(FrameType::kHeartbeat, "hb"));
  EXPECT_TRUE(opened.ok()) << opened.status();
}

TEST_F(FrameAuthTest, FlippedMacByteIsPermissionDenied) {
  std::string sealed = client_.Seal(FrameType::kShardRequest, "payload");
  sealed[0] ^= 0x01;
  const StatusOr<std::string> opened =
      server_.Open(FrameType::kShardRequest, sealed);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(FrameAuthTest, FlippedPayloadByteIsPermissionDenied) {
  std::string sealed = client_.Seal(FrameType::kShardRequest, "payload");
  sealed.back() ^= 0x01;
  const StatusOr<std::string> opened =
      server_.Open(FrameType::kShardRequest, sealed);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(FrameAuthTest, WrongFrameTypeIsPermissionDenied) {
  // The frame type is MACed: re-labelling a heartbeat as a result fails.
  const std::string sealed = client_.Seal(FrameType::kHeartbeat, "x");
  const StatusOr<std::string> opened =
      server_.Open(FrameType::kShardResult, sealed);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(FrameAuthTest, ReplayedFrameIsPermissionDenied) {
  const std::string sealed = client_.Seal(FrameType::kShardRequest, "once");
  ASSERT_TRUE(server_.Open(FrameType::kShardRequest, sealed).ok());
  const StatusOr<std::string> replayed =
      server_.Open(FrameType::kShardRequest, sealed);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(FrameAuthTest, EveryPrefixTruncationIsPermissionDenied) {
  const std::string sealed =
      client_.Seal(FrameType::kShardRequest, "truncation-corpus");
  for (std::size_t length = 0; length < sealed.size(); ++length) {
    FrameAuthenticator fresh_server(kSecret, nonce_, /*is_client=*/false);
    const StatusOr<std::string> opened = fresh_server.Open(
        FrameType::kShardRequest, std::string_view(sealed).substr(0, length));
    ASSERT_FALSE(opened.ok()) << "accepted a " << length << "-byte prefix";
    EXPECT_EQ(opened.status().code(), StatusCode::kPermissionDenied)
        << "prefix length " << length;
  }
}

TEST_F(FrameAuthTest, WrongKeyIsPermissionDenied) {
  FrameAuthenticator intruder("not-the-secret", nonce_, /*is_client=*/true);
  const StatusOr<std::string> opened = server_.Open(
      FrameType::kShardRequest,
      intruder.Seal(FrameType::kShardRequest, "let me in"));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(FrameAuthTest, CrossConnectionReplayIsPermissionDenied) {
  // A frame captured on connection A (nonce A) replayed into connection B
  // (nonce B) carries the wrong nonce in its MAC.
  FrameAuthenticator other_client(kSecret, FrameAuthenticator::NewNonce(),
                                  /*is_client=*/true);
  const StatusOr<std::string> opened = server_.Open(
      FrameType::kShardRequest,
      other_client.Seal(FrameType::kShardRequest, "stale"));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(FrameAuthTest, ReflectedFrameIsPermissionDenied) {
  // A client frame bounced back at the client fails the direction byte:
  // the client expects 'S' frames, the echo was MACed as 'C'.
  const std::string sealed = client_.Seal(FrameType::kHeartbeat, "echo");
  const StatusOr<std::string> opened =
      client_.Open(FrameType::kHeartbeat, sealed);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(FrameAuthTest, DisabledAuthenticatorPassesThrough) {
  FrameAuthenticator disabled;
  EXPECT_FALSE(disabled.enabled());
  EXPECT_EQ(disabled.Seal(FrameType::kShardRequest, "clear"), "clear");
  const StatusOr<std::string> opened =
      disabled.Open(FrameType::kShardRequest, "clear");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, "clear");
}

// ---------------------------------------------------------------------------
// AcceptAuthenticatedHello (the host-side bootstrap)
// ---------------------------------------------------------------------------

class AcceptHelloTest : public ::testing::Test {
 protected:
  static constexpr char kSecret[] = "hello-bootstrap-secret";

  // Builds the exact sealed hello a client opens a connection with.
  std::string SealedHello(FrameAuthenticator& client) {
    HelloEnvelope hello;
    hello.nonce = client.nonce();
    return client.Seal(FrameType::kHello, SerializeHello(hello));
  }
};

TEST_F(AcceptHelloTest, ValidHelloYieldsWorkingSession) {
  FrameAuthenticator client(kSecret, FrameAuthenticator::NewNonce(),
                            /*is_client=*/true);
  StatusOr<FrameAuthenticator> server =
      AcceptAuthenticatedHello(kSecret, SealedHello(client));
  ASSERT_TRUE(server.ok()) << server.status();
  // The hello consumed client sequence 0; the session continues seamlessly.
  const StatusOr<std::string> opened = server->Open(
      FrameType::kShardRequest,
      client.Seal(FrameType::kShardRequest, "first request"));
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(*opened, "first request");
  // And the host's kHelloOk verifies on the client side.
  EXPECT_TRUE(
      client.Open(FrameType::kHelloOk, server->Seal(FrameType::kHelloOk, ""))
          .ok());
}

TEST_F(AcceptHelloTest, EveryPrefixTruncationIsPermissionDenied) {
  FrameAuthenticator client(kSecret, FrameAuthenticator::NewNonce(),
                            /*is_client=*/true);
  const std::string sealed = SealedHello(client);
  for (std::size_t length = 0; length < sealed.size(); ++length) {
    const StatusOr<FrameAuthenticator> server = AcceptAuthenticatedHello(
        kSecret, std::string_view(sealed).substr(0, length));
    ASSERT_FALSE(server.ok()) << "accepted a " << length << "-byte prefix";
    EXPECT_EQ(server.status().code(), StatusCode::kPermissionDenied)
        << "prefix length " << length;
  }
}

TEST_F(AcceptHelloTest, TamperedNonceFailsItsOwnMac) {
  FrameAuthenticator client(kSecret, FrameAuthenticator::NewNonce(),
                            /*is_client=*/true);
  std::string sealed = SealedHello(client);
  sealed.back() ^= 0x01;  // a hex digit of the nonce
  const StatusOr<FrameAuthenticator> server =
      AcceptAuthenticatedHello(kSecret, sealed);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(AcceptHelloTest, WrongKeyIsPermissionDenied) {
  FrameAuthenticator client("the-wrong-secret", FrameAuthenticator::NewNonce(),
                            /*is_client=*/true);
  const StatusOr<FrameAuthenticator> server =
      AcceptAuthenticatedHello(kSecret, SealedHello(client));
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(AcceptHelloTest, NonHelloPayloadIsPermissionDenied) {
  FrameAuthenticator client(kSecret, FrameAuthenticator::NewNonce(),
                            /*is_client=*/true);
  const StatusOr<FrameAuthenticator> server = AcceptAuthenticatedHello(
      kSecret, client.Seal(FrameType::kHello, "not a hello envelope"));
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kPermissionDenied);
}

}  // namespace
}  // namespace switchv
