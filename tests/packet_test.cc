#include <gtest/gtest.h>

#include "models/sai_model.h"
#include "models/test_packets.h"
#include "packet/packet.h"

namespace switchv::packet {
namespace {

using models::BuildSaiProgram;
using models::Role;

class PacketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto program = BuildSaiProgram(Role::kMiddleblock);
    ASSERT_TRUE(program.ok()) << program.status();
    program_ = std::move(program).value();
  }
  p4ir::Program program_;
};

TEST_F(PacketTest, Ipv4TcpParseRoundTrip) {
  models::Ipv4PacketSpec spec;
  spec.dst_ip = 0x0A010203;
  spec.ttl = 33;
  const std::string bytes = models::BuildIpv4Packet(program_, spec);
  const ParsedPacket parsed = Parse(program_, ParserSpec::Sai(), bytes);
  EXPECT_TRUE(parsed.valid_headers.contains("ethernet"));
  EXPECT_TRUE(parsed.valid_headers.contains("ipv4"));
  EXPECT_TRUE(parsed.valid_headers.contains("tcp"));
  EXPECT_FALSE(parsed.valid_headers.contains("udp"));
  EXPECT_EQ(parsed.fields.at("ipv4.dst_addr").ToUint64(), 0x0A010203u);
  EXPECT_EQ(parsed.fields.at("ipv4.ttl").ToUint64(), 33u);
  EXPECT_EQ(parsed.fields.at("tcp.dst_port").ToUint64(), 443u);
  EXPECT_EQ(parsed.payload, spec.payload);
  EXPECT_EQ(Deparse(program_, parsed), bytes);
}

TEST_F(PacketTest, Ipv6UdpParseRoundTrip) {
  models::Ipv6PacketSpec spec;
  const std::string bytes = models::BuildIpv6Packet(program_, spec);
  const ParsedPacket parsed = Parse(program_, ParserSpec::Sai(), bytes);
  EXPECT_TRUE(parsed.valid_headers.contains("ipv6"));
  EXPECT_TRUE(parsed.valid_headers.contains("udp"));
  EXPECT_EQ(parsed.fields.at("ipv6.dst_addr").value(), spec.dst_ip);
  EXPECT_EQ(parsed.fields.at("udp.dst_port").ToUint64(), 53u);
  EXPECT_EQ(Deparse(program_, parsed), bytes);
}

TEST_F(PacketTest, ArpParses) {
  const std::string bytes = models::BuildArpPacket(program_);
  const ParsedPacket parsed = Parse(program_, ParserSpec::Sai(), bytes);
  EXPECT_TRUE(parsed.valid_headers.contains("arp"));
  EXPECT_EQ(parsed.fields.at("arp.opcode").ToUint64(), 1u);
  EXPECT_EQ(parsed.fields.at("ethernet.ether_type").ToUint64(), 0x0806u);
}

TEST_F(PacketTest, UnknownEtherTypeStopsAtEthernet) {
  models::Ipv4PacketSpec spec;
  std::string bytes = models::BuildIpv4Packet(program_, spec);
  // Corrupt the ether_type to an unhandled value.
  bytes[12] = '\x12';
  bytes[13] = '\x34';
  const ParsedPacket parsed = Parse(program_, ParserSpec::Sai(), bytes);
  EXPECT_TRUE(parsed.valid_headers.contains("ethernet"));
  EXPECT_FALSE(parsed.valid_headers.contains("ipv4"));
  // Everything after ethernet is payload.
  EXPECT_EQ(parsed.payload.size(), bytes.size() - 14);
}

TEST_F(PacketTest, TruncatedHeaderNotMarkedValid) {
  models::Ipv4PacketSpec spec;
  spec.payload.clear();
  std::string bytes = models::BuildIpv4Packet(program_, spec);
  // Keep ethernet (14B) plus half an IPv4 header.
  bytes.resize(14 + 10);
  const ParsedPacket parsed = Parse(program_, ParserSpec::Sai(), bytes);
  EXPECT_TRUE(parsed.valid_headers.contains("ethernet"));
  EXPECT_FALSE(parsed.valid_headers.contains("ipv4"));
  EXPECT_EQ(parsed.payload.size(), 10u);
}

TEST_F(PacketTest, EmptyPacketIsAllPayload) {
  const ParsedPacket parsed = Parse(program_, ParserSpec::Sai(), "");
  EXPECT_TRUE(parsed.valid_headers.empty());
  EXPECT_TRUE(parsed.payload.empty());
}

TEST_F(PacketTest, InnerIpv4ParsedInWanRole) {
  auto wan = BuildSaiProgram(Role::kWan);
  ASSERT_TRUE(wan.ok()) << wan.status();
  // Build an IP-in-IP packet: outer protocol 4, then a second IPv4 header.
  models::Ipv4PacketSpec outer;
  outer.protocol = 4;
  outer.payload.clear();
  std::string outer_bytes = models::BuildIpv4Packet(*wan, outer);
  models::Ipv4PacketSpec inner;
  inner.dst_ip = 0x0A0A0A0A;
  inner.protocol = 17;
  std::string inner_bytes = models::BuildIpv4Packet(*wan, inner);
  // Strip the inner packet's ethernet header (14 bytes).
  outer_bytes += inner_bytes.substr(14);
  const ParsedPacket parsed =
      Parse(*wan, ParserSpec::Sai(), outer_bytes);
  EXPECT_TRUE(parsed.valid_headers.contains("ipv4"));
  EXPECT_TRUE(parsed.valid_headers.contains("inner_ipv4"));
  EXPECT_EQ(parsed.fields.at("inner_ipv4.dst_addr").ToUint64(), 0x0A0A0A0Au);
}

TEST(ForwardingOutcome, CanonicalDistinguishesBehaviors) {
  ForwardingOutcome fwd;
  fwd.egress_port = 3;
  fwd.packet_bytes = "abc";
  ForwardingOutcome drop;
  drop.dropped = true;
  ForwardingOutcome punt = fwd;
  punt.punted = true;
  EXPECT_NE(fwd.Canonical(), drop.Canonical());
  EXPECT_NE(fwd.Canonical(), punt.Canonical());
  EXPECT_EQ(fwd, fwd);
}

TEST(ForwardingOutcome, CloneOrderInsensitive) {
  ForwardingOutcome a;
  a.dropped = true;
  a.clones = {{2, "x"}, {1, "y"}};
  ForwardingOutcome b;
  b.dropped = true;
  b.clones = {{1, "y"}, {2, "x"}};
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace switchv::packet
