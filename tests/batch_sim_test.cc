// Lane-vs-scalar conformance wall for the bit-parallel 64-lane batch
// interpreter (bmv2/batch_interpreter.h) and its word-parallel match
// kernels (bmv2/lane_kernels.h). Registered under `ctest -L batch`.
//
// The contract under test: the batch lane is a pure optimization. Every
// lane result — forwarding outcome bytes, error status, enumerated
// behaviour set — is byte-identical to the scalar Interpreter, for any
// batch size, for divergent control flow, for truncated and garbage
// packets, and with every lane forced onto the scalar fallback. At the
// campaign level, reports produced with the batch lane on and off match
// byte for byte over the whole fault catalog and across execution
// substrates; only the batch counters and the reference-timer histogram
// granularity (one record per batched call vs one per packet) may differ.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bmv2/batch_interpreter.h"
#include "bmv2/lane_kernels.h"
#include "models/entry_gen.h"
#include "models/sai_model.h"
#include "models/test_packets.h"
#include "switchv/experiment.h"

// Baked in by tests/CMakeLists.txt; the substrate sweep is skipped when
// the worker binary is unavailable (e.g. a hand-rolled compile).
#ifndef SWITCHV_SHARD_WORKER_PATH
#define SWITCHV_SHARD_WORKER_PATH ""
#endif

namespace switchv {
namespace {

uint128 Low(int width) {
  return width >= 128 ? ~static_cast<uint128>(0)
                      : (static_cast<uint128>(1) << width) - 1;
}

uint128 Rand128(std::mt19937_64& rng) {
  return (static_cast<uint128>(rng()) << 64) | rng();
}

// ---------------------------------------------------------------------------
// Word-parallel kernel properties: the transposed planes and the ternary
// match must agree with the obvious per-lane scalar over random values,
// random masks, and the mask edge cases (exact = full-width mask, LPM
// prefix 0 and full width, ternary don't-care bits, partial lane words).
// ---------------------------------------------------------------------------

TEST(LaneKernelTest, TransposeRoundTripsRandomValues) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 64; ++round) {
    const int width = 1 + static_cast<int>(rng() % 128);
    const std::uint64_t lane_mask =
        round % 3 == 0 ? ~0ull : rng();  // full and sparse lane sets
    std::array<uint128, 64> values;
    for (uint128& v : values) v = Rand128(rng) & Low(width);
    bmv2::LanePlanes planes;
    planes.Transpose(values.data(), lane_mask, Low(width));
    EXPECT_EQ(planes.populated, Low(width));
    for (int lane = 0; lane < 64; ++lane) {
      if (((lane_mask >> lane) & 1) == 0) continue;
      for (int bit = 0; bit < width; ++bit) {
        ASSERT_EQ((planes.planes[bit] >> lane) & 1,
                  static_cast<std::uint64_t>((values[lane] >> bit) & 1))
            << "round " << round << " lane " << lane << " bit " << bit;
      }
    }
  }
}

TEST(LaneKernelTest, TernaryMatchAgreesWithScalarOnRandomMasks) {
  std::mt19937_64 rng(11);
  for (int round = 0; round < 200; ++round) {
    const int width = 1 + static_cast<int>(rng() % 128);
    // Rotate through the mask shapes a real table produces: exact
    // (full-width), LPM prefix (including 0 and width), and free ternary
    // with don't-care bits.
    uint128 mask;
    switch (round % 4) {
      case 0:
        mask = Low(width);  // exact
        break;
      case 1: {
        const int prefix = static_cast<int>(rng() % (width + 1));  // 0..width
        mask = Low(width) & ~Low(width - prefix);
        break;
      }
      case 2:
        mask = 0;  // ternary full don't-care: matches everything
        break;
      default:
        mask = Rand128(rng) & Low(width);
    }
    const uint128 value = Rand128(rng) & Low(width);
    // Lane counts that are not a multiple of 64 arrive as partial seed
    // words.
    const std::uint64_t seed_mask =
        round % 5 == 0 ? Low(1 + rng() % 63) : rng();
    std::array<uint128, 64> lane_values;
    for (int lane = 0; lane < 64; ++lane) {
      // Half the lanes are forced to match so both verdicts occur often.
      lane_values[static_cast<std::size_t>(lane)] =
          (rng() % 2 == 0)
              ? ((value & mask) | (Rand128(rng) & ~mask)) & Low(width)
              : Rand128(rng) & Low(width);
    }
    bmv2::LanePlanes planes;
    planes.Transpose(lane_values.data(), seed_mask, mask);
    const std::uint64_t got =
        bmv2::LaneTernaryMatch(planes, value, mask, seed_mask);
    for (int lane = 0; lane < 64; ++lane) {
      const bool in = ((seed_mask >> lane) & 1) != 0;
      const bool scalar =
          in && ((lane_values[static_cast<std::size_t>(lane)] ^ value) &
                 mask) == 0;
      ASSERT_EQ(((got >> lane) & 1) != 0, scalar)
          << "round " << round << " lane " << lane << " width " << width;
    }
  }
}

// ---------------------------------------------------------------------------
// Interpreter-level conformance: RunBatch64 and EnumerateBehaviorsBatch
// against the scalar Interpreter over a randomized corpus — routed,
// unrouted, v4/v6/ARP (divergent parser and control flow in one batch),
// truncated prefixes, and garbage bytes.
// ---------------------------------------------------------------------------

class BatchSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto program = models::BuildSaiProgram(models::Role::kMiddleblock);
    ASSERT_TRUE(program.ok()) << program.status();
    program_ = std::move(program).value();
    info_ = p4ir::P4Info::FromProgram(program_);
    interpreter_ = std::make_unique<bmv2::Interpreter>(
        program_, models::SaiParserSpec(), models::DefaultCloneSessions());
    auto entries =
        models::GenerateEntries(info_, models::Role::kMiddleblock,
                                ExperimentOptions::SmallWorkload(),
                                /*seed=*/2);
    ASSERT_TRUE(entries.ok()) << entries.status();
    ASSERT_TRUE(interpreter_->InstallEntries(*entries).ok());
  }

  // `count` packets cycling through every corpus family, perturbed by
  // `seed`.
  std::vector<std::string> BuildCorpus(int count, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<std::string> corpus;
    corpus.reserve(static_cast<std::size_t>(count));
    const std::string donor =
        models::BuildIpv4Packet(program_, models::Ipv4PacketSpec{});
    for (int i = 0; i < count; ++i) {
      switch (i % 6) {
        case 0: {  // routed-or-not IPv4, varied hash inputs and TTL
          models::Ipv4PacketSpec spec;
          spec.dst_ip = static_cast<std::uint32_t>(rng());
          spec.src_ip = static_cast<std::uint32_t>(rng());
          spec.ttl = static_cast<int>(rng() % 3 == 0 ? rng() % 2 : 64);
          spec.protocol = (i % 2 == 0) ? 6 : 17;
          spec.src_port = static_cast<std::uint16_t>(rng());
          corpus.push_back(models::BuildIpv4Packet(program_, spec));
          break;
        }
        case 1: {  // IPv6
          models::Ipv6PacketSpec spec;
          spec.dst_ip = Rand128(rng);
          spec.src_ip = Rand128(rng);
          spec.hop_limit = static_cast<int>(rng() % 2 == 0 ? 1 : 64);
          corpus.push_back(models::BuildIpv6Packet(program_, spec));
          break;
        }
        case 2:  // ARP (punt paths)
          corpus.push_back(models::BuildArpPacket(program_));
          break;
        case 3:  // truncated prefix of a valid packet
          corpus.push_back(
              donor.substr(0, rng() % (donor.size() + 1)));
          break;
        case 4: {  // garbage bytes, assorted lengths
          std::string garbage(rng() % 96, '\0');
          for (char& c : garbage) c = static_cast<char>(rng());
          corpus.push_back(std::move(garbage));
          break;
        }
        default: {  // in-subnet IPv4 (likely routed)
          models::Ipv4PacketSpec spec;
          spec.dst_ip = 0x0A000000u | static_cast<std::uint32_t>(rng() % 256);
          corpus.push_back(models::BuildIpv4Packet(program_, spec));
          break;
        }
      }
    }
    return corpus;
  }

  static std::vector<bmv2::BatchInterpreter::LanePacket> Lanes(
      const std::vector<std::string>& corpus) {
    std::vector<bmv2::BatchInterpreter::LanePacket> lanes;
    lanes.reserve(corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      lanes.push_back(
          {corpus[i], static_cast<std::uint16_t>(1 + i % 8)});
    }
    return lanes;
  }

  p4ir::Program program_;
  p4ir::P4Info info_;
  std::unique_ptr<bmv2::Interpreter> interpreter_;
};

TEST_F(BatchSimTest, RunBatchMatchesScalarAcrossBatchSizes) {
  bmv2::BatchInterpreter batch(*interpreter_);
  for (const int size : {1, 2, 3, 16, 63, 64, 65, 130}) {
    const std::vector<std::string> corpus =
        BuildCorpus(size, /*seed=*/static_cast<std::uint64_t>(size));
    const auto lanes = Lanes(corpus);
    for (const std::uint64_t seed : {0ull, 1ull, 5ull}) {
      SCOPED_TRACE("size " + std::to_string(size) + " seed " +
                   std::to_string(seed));
      const auto results = batch.RunBatch64(lanes, seed);
      ASSERT_EQ(results.size(), lanes.size());
      for (std::size_t i = 0; i < lanes.size(); ++i) {
        SCOPED_TRACE("lane " + std::to_string(i));
        const auto scalar = interpreter_->Run(
            lanes[i].bytes, lanes[i].ingress_port, seed);
        ASSERT_EQ(results[i].ok(), scalar.ok())
            << (results[i].ok() ? scalar.status().ToString()
                                : results[i].status().ToString());
        if (!scalar.ok()) {
          EXPECT_EQ(results[i].status().ToString(),
                    scalar.status().ToString());
          continue;
        }
        // Canonical equality covers drop/punt/port/bytes/clones; the
        // explicit byte comparisons make failures attributable.
        EXPECT_EQ(results[i]->packet_bytes, scalar->packet_bytes);
        EXPECT_EQ(results[i]->clones, scalar->clones);
        EXPECT_EQ(results[i]->Canonical(), scalar->Canonical());
      }
    }
  }
  // The corpus must actually have exercised the vector path.
  EXPECT_GT(batch.stats().lanes_run, 0u);
  EXPECT_GT(batch.stats().batch_passes, 0u);
}

TEST_F(BatchSimTest, EnumerateBehaviorsMatchesScalarPerLane) {
  bmv2::BatchInterpreter batch(*interpreter_);
  const std::vector<std::string> corpus = BuildCorpus(70, /*seed=*/99);
  const auto lanes = Lanes(corpus);
  const auto results = batch.EnumerateBehaviorsBatch(lanes);
  ASSERT_EQ(results.size(), lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    SCOPED_TRACE("lane " + std::to_string(i));
    const auto scalar = interpreter_->EnumerateBehaviors(
        lanes[i].bytes, lanes[i].ingress_port);
    ASSERT_EQ(results[i].ok(), scalar.ok());
    if (!scalar.ok()) {
      EXPECT_EQ(results[i].status().ToString(), scalar.status().ToString());
      continue;
    }
    ASSERT_EQ(results[i]->size(), scalar->size());
    for (std::size_t k = 0; k < scalar->size(); ++k) {
      EXPECT_EQ((*results[i])[k].Canonical(), (*scalar)[k].Canonical())
          << "behaviour " << k;
    }
  }
}

// Every lane forced onto the scalar fallback: results still match, and the
// fallback counter accounts for every lane while the vector counter stays
// at zero — the counter regression for `batch_scalar_fallbacks`.
TEST_F(BatchSimTest, ForcedFullFallbackMatchesScalarAndIsCounted) {
  bmv2::BatchInterpreter batch(*interpreter_);
  const std::vector<std::string> corpus = BuildCorpus(70, /*seed=*/5);
  const auto lanes = Lanes(corpus);

  batch.set_force_scalar_fallback(true);
  batch.ResetStats();
  const auto forced = batch.RunBatch64(lanes, /*hash_seed=*/3);
  EXPECT_EQ(batch.stats().lanes_run, 0u);
  EXPECT_EQ(batch.stats().scalar_fallbacks, lanes.size());

  batch.set_force_scalar_fallback(false);
  batch.ResetStats();
  const auto vectorized = batch.RunBatch64(lanes, /*hash_seed=*/3);
  EXPECT_GT(batch.stats().lanes_run, 0u);
  EXPECT_EQ(batch.stats().lanes_run + batch.stats().scalar_fallbacks,
            lanes.size());

  ASSERT_EQ(forced.size(), vectorized.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    SCOPED_TRACE("lane " + std::to_string(i));
    const auto scalar =
        interpreter_->Run(lanes[i].bytes, lanes[i].ingress_port, 3);
    ASSERT_EQ(forced[i].ok(), scalar.ok());
    ASSERT_EQ(vectorized[i].ok(), scalar.ok());
    if (!scalar.ok()) continue;
    EXPECT_EQ(forced[i]->Canonical(), scalar->Canonical());
    EXPECT_EQ(vectorized[i]->Canonical(), scalar->Canonical());
  }
}

// ---------------------------------------------------------------------------
// Campaign-level conformance: the full fault-catalog sweep with the batch
// lane on vs off. Detection verdicts, incident fingerprints, rendered
// exemplars, and count-valued telemetry must be byte-identical; only the
// batch counters (off: zero) and the reference-timer histogram (batched
// calls record fewer, larger samples) may differ.
// ---------------------------------------------------------------------------

ExperimentOptions FastSweepOptions() {
  ExperimentOptions options;
  options.nightly.control_plane.num_requests = 12;
  options.nightly.control_plane.updates_per_request = 40;
  options.nightly.dataplane.packet_out_ports = 2;
  return options;
}

// Deterministic projection of a nightly report (mirrors the oracle-cache
// wall's projection). Excluded by design: the batch counters and the
// reference histogram count — everything else must match.
std::string RenderNightly(const NightlyReport& report) {
  std::ostringstream out;
  out << "fuzzed=" << report.fuzzed_updates
      << " packets=" << report.packets_tested
      << " targets=" << report.generation.targets_covered << "/"
      << report.generation.targets_total
      << " queries=" << report.generation.solver_queries << "\n";
  for (const IncidentGroup& group : report.groups) {
    out << "group " << group.fingerprint << " x" << group.occurrences
        << " shards=[";
    for (const int shard : group.shards) out << shard << ",";
    out << "] detector=" << DetectorName(group.exemplar.detector)
        << " layer=" << sut::SutLayerName(group.exemplar.layer)
        << " shard=" << group.exemplar.shard << "\n"
        << "summary: " << group.exemplar.summary << "\n"
        << "details: " << group.exemplar.details << "\n"
        << group.exemplar.replay_trace << "\n";
  }
  const MetricsSnapshot& m = report.metrics;
  out << "counts " << m.shards_completed << " " << m.updates_sent << " "
      << m.requests_sent << " " << m.generated_valid << " "
      << m.generated_invalid << " " << m.oracle_findings << " "
      << m.packets_tested << " " << m.solver_queries << " "
      << m.reference_packets << " " << m.switch_writes << " "
      << m.switch_reads << " " << m.switch_packets_injected << " "
      << m.incidents_raised << " " << m.incidents_unique << "\n";
  out << "hists " << m.switch_write_hist.count << " " << m.oracle_hist.count
      << " " << m.generation_hist.count << "\n";
  return out.str();
}

std::set<std::uint64_t> Fingerprints(const NightlyReport& report) {
  std::set<std::uint64_t> fingerprints;
  for (const IncidentGroup& group : report.groups) {
    fingerprints.insert(group.fingerprint);
  }
  return fingerprints;
}

TEST(BatchConformanceTest, FaultCatalogSweepIsByteIdenticalToScalar) {
  auto batched = RunFullSweep(FastSweepOptions());
  ASSERT_TRUE(batched.ok()) << batched.status();

  ExperimentOptions scalar_options = FastSweepOptions();
  scalar_options.nightly.dataplane.batch_reference = false;
  auto scalar = RunFullSweep(scalar_options);
  ASSERT_TRUE(scalar.ok()) << scalar.status();

  ASSERT_EQ(batched->size(), sut::BugCatalog().size());
  ASSERT_EQ(batched->size(), scalar->size());
  std::uint64_t batched_lanes = 0;
  for (std::size_t i = 0; i < batched->size(); ++i) {
    const BugRunResult& with_batch = (*batched)[i];
    const BugRunResult& without = (*scalar)[i];
    SCOPED_TRACE(with_batch.bug->name);
    ASSERT_EQ(with_batch.bug->fault, without.bug->fault);

    EXPECT_EQ(with_batch.detected, without.detected);
    EXPECT_EQ(with_batch.detector, without.detector);
    EXPECT_EQ(with_batch.incident_count, without.incident_count);
    EXPECT_EQ(with_batch.first_incident, without.first_incident);
    EXPECT_EQ(Fingerprints(with_batch.report), Fingerprints(without.report));
    EXPECT_EQ(RenderNightly(with_batch.report),
              RenderNightly(without.report));

    batched_lanes += with_batch.report.metrics.batch_lanes_run;
    EXPECT_EQ(without.report.metrics.batch_lanes_run, 0u);
    EXPECT_EQ(without.report.metrics.batch_scalar_fallbacks, 0u);
    // Both modes enumerate the same packets through the reference.
    EXPECT_EQ(with_batch.report.metrics.reference_packets,
              without.report.metrics.reference_packets);
  }
  // The batched sweep must actually have gone through the lanes.
  EXPECT_GT(batched_lanes, 0u);
}

// ---------------------------------------------------------------------------
// Substrate conformance: batch on/off reports are byte-identical under
// in-process and subprocess execution. The subprocess runs exercise the
// `batch_reference` wire field (shard_io.cc) end to end.
// ---------------------------------------------------------------------------

class BatchSubstrateTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto model = models::BuildSaiProgram(models::Role::kMiddleblock);
    ASSERT_TRUE(model.ok()) << model.status();
    model_ = new p4ir::Program(*std::move(model));
    info_ = new p4ir::P4Info(p4ir::P4Info::FromProgram(*model_));
    auto entries =
        models::GenerateEntries(*info_, models::Role::kMiddleblock,
                                ExperimentOptions::SmallWorkload(),
                                /*seed=*/2);
    ASSERT_TRUE(entries.ok()) << entries.status();
    entries_ = new std::vector<p4rt::TableEntry>(*std::move(entries));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete info_;
    delete entries_;
    model_ = nullptr;
    info_ = nullptr;
    entries_ = nullptr;
  }

  static CampaignOptions DataplaneCampaign() {
    CampaignOptions options;
    options.seed = 7;
    options.run_control_plane = false;
    options.dataplane_shards = 2;
    options.dataplane.packet_out_ports = 2;
    return options;
  }

  static ShardScenario Scenario() {
    ShardScenario scenario;
    scenario.role = models::Role::kMiddleblock;
    scenario.workload = ExperimentOptions::SmallWorkload();
    scenario.entry_seed = 2;
    return scenario;
  }

  static CampaignReport Run(const sut::FaultRegistry* faults,
                            const CampaignOptions& options) {
    return RunValidationCampaign(faults, *model_, models::SaiParserSpec(),
                                 *entries_, options);
  }

  // The campaign projection used by the engine/oracle conformance walls,
  // minus the reference histogram count (batched timer granularity) —
  // batch counters are asserted on separately, not rendered.
  static std::string RenderReport(const CampaignReport& report) {
    std::ostringstream out;
    out << "shards=" << report.shards_run
        << " fuzzed=" << report.fuzzed_updates
        << " packets=" << report.packets_tested
        << " targets=" << report.generation.targets_covered << "/"
        << report.generation.targets_total
        << " queries=" << report.generation.solver_queries << "\n";
    for (const IncidentGroup& group : report.groups) {
      out << "group " << group.fingerprint << " x" << group.occurrences
          << " shards=[";
      for (const int shard : group.shards) out << shard << ",";
      out << "] detector=" << DetectorName(group.exemplar.detector)
          << " layer=" << sut::SutLayerName(group.exemplar.layer)
          << " shard=" << group.exemplar.shard << "\n"
          << "summary: " << group.exemplar.summary << "\n"
          << "details: " << group.exemplar.details << "\n"
          << group.exemplar.replay_trace << "\n";
    }
    const MetricsSnapshot& m = report.metrics;
    out << "counts " << m.shards_completed << " " << m.updates_sent << " "
        << m.requests_sent << " " << m.generated_valid << " "
        << m.generated_invalid << " " << m.oracle_findings << " "
        << m.packets_tested << " " << m.solver_queries << " "
        << m.reference_packets << " " << m.switch_writes << " "
        << m.switch_reads << " " << m.switch_packets_injected << " "
        << m.incidents_raised << " " << m.incidents_unique << "\n";
    out << "hists " << m.switch_write_hist.count << " "
        << m.oracle_hist.count << " " << m.generation_hist.count << "\n";
    return out.str();
  }

  static p4ir::Program* model_;
  static p4ir::P4Info* info_;
  static std::vector<p4rt::TableEntry>* entries_;
};

p4ir::Program* BatchSubstrateTest::model_ = nullptr;
p4ir::P4Info* BatchSubstrateTest::info_ = nullptr;
std::vector<p4rt::TableEntry>* BatchSubstrateTest::entries_ = nullptr;

TEST_F(BatchSubstrateTest, BatchOnOffMatchOnEverySubstrate) {
  // A dataplane-visible fault so the wall covers incident production, not
  // just clean runs.
  sut::FaultRegistry faults;
  faults.Activate(sut::Fault::kDscpRemarkedToZero);

  std::vector<std::pair<std::string, std::string>> reports;

  CampaignOptions in_process = DataplaneCampaign();
  const CampaignReport in_process_on = Run(&faults, in_process);
  reports.emplace_back("in-process batch", RenderReport(in_process_on));
  EXPECT_GT(in_process_on.metrics.batch_lanes_run, 0u);
  EXPECT_GT(in_process_on.metrics.reference_packets, 0u);

  CampaignOptions in_process_off = DataplaneCampaign();
  in_process_off.dataplane.batch_reference = false;
  const CampaignReport in_process_scalar = Run(&faults, in_process_off);
  reports.emplace_back("in-process scalar", RenderReport(in_process_scalar));
  EXPECT_EQ(in_process_scalar.metrics.batch_lanes_run, 0u);
  EXPECT_EQ(in_process_scalar.metrics.batch_scalar_fallbacks, 0u);
  EXPECT_GT(in_process_scalar.metrics.reference_packets, 0u);

  if (!std::string(SWITCHV_SHARD_WORKER_PATH).empty()) {
    CampaignOptions subprocess = DataplaneCampaign();
    subprocess.execution = CampaignOptions::Execution::kSubprocess;
    subprocess.worker_binary = SWITCHV_SHARD_WORKER_PATH;
    subprocess.scenario = Scenario();
    const CampaignReport subprocess_on = Run(&faults, subprocess);
    reports.emplace_back("subprocess batch", RenderReport(subprocess_on));
    // The counters crossed the wire envelope from the worker processes.
    EXPECT_GT(subprocess_on.metrics.batch_lanes_run, 0u);

    CampaignOptions subprocess_off = subprocess;
    subprocess_off.dataplane.batch_reference = false;
    const CampaignReport subprocess_scalar = Run(&faults, subprocess_off);
    reports.emplace_back("subprocess scalar",
                         RenderReport(subprocess_scalar));
    EXPECT_EQ(subprocess_scalar.metrics.batch_lanes_run, 0u);
  }

  for (std::size_t i = 1; i < reports.size(); ++i) {
    SCOPED_TRACE(reports[i].first);
    EXPECT_EQ(reports[0].second, reports[i].second)
        << "report diverged from " << reports[0].first;
  }
}

// The `batch_reference` knob survives the spec wire round-trip.
TEST(BatchWireTest, SpecRoundTripCarriesTheKnob) {
  for (const bool enabled : {true, false}) {
    WireShardSpec spec;
    spec.kind = WireShardSpec::Kind::kDataplane;
    spec.scenario.role = models::Role::kMiddleblock;
    spec.scenario.workload = ExperimentOptions::SmallWorkload();
    spec.scenario.entry_seed = 2;
    spec.dataplane.batch_reference = enabled;
    auto parsed = ParseShardSpec(SerializeShardSpec(spec));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->dataplane.batch_reference, enabled);
  }
}

// The new counters are exported on every surface the fleet scrapes.
TEST_F(BatchSubstrateTest, BatchCountersAreExported) {
  const CampaignReport report = Run(nullptr, DataplaneCampaign());
  ASSERT_GT(report.metrics.batch_lanes_run, 0u);
  const MetricsSnapshot& m = report.metrics;
  EXPECT_NE(m.ToString().find("reference:"), std::string::npos);
  EXPECT_NE(m.ToPrometheus().find("switchv_batch_lanes_run_total"),
            std::string::npos);
  EXPECT_NE(m.ToPrometheus().find("switchv_reference_packets_total"),
            std::string::npos);
  EXPECT_NE(m.ToJson().find("\"batch_lanes_run\""), std::string::npos);
  EXPECT_NE(m.ToWireJson().find("\"batch_scalar_fallbacks\""),
            std::string::npos);
  EXPECT_GT(m.reference_packets_per_second(), 0.0);
}

}  // namespace
}  // namespace switchv
