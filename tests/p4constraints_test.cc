#include <gtest/gtest.h>

#include "p4constraints/eval.h"
#include "p4constraints/parser.h"

namespace switchv::p4constraints {
namespace {

TableSchema RoutingSchema() {
  TableSchema schema;
  schema.keys = {
      {"vrf_id", 12, KeySchema::Kind::kExact},
      {"dst_ip", 32, KeySchema::Kind::kLpm},
      {"ether_type", 16, KeySchema::Kind::kTernary},
      {"in_port", 16, KeySchema::Kind::kOptional},
  };
  return schema;
}

EntryValuation Valuation(uint128 vrf, uint128 ether_value,
                         uint128 ether_mask) {
  EntryValuation entry;
  entry.keys["vrf_id"] = {true, vrf, 0xFFF, 0};
  entry.keys["dst_ip"] = {true, 0x0A000000, 0xFFFFFF00, 24};
  entry.keys["ether_type"] = {ether_mask != 0, ether_value, ether_mask, 0};
  entry.keys["in_port"] = {false, 0, 0, 0};
  entry.priority = 10;
  return entry;
}

StatusOr<bool> Check(std::string_view source, const EntryValuation& entry) {
  auto parsed = ParseConstraint(source, RoutingSchema());
  if (!parsed.ok()) return parsed.status();
  return EvalConstraint(*parsed, entry);
}

TEST(Parser, PaperExampleVrfNotZero) {
  auto result = Check("vrf_id != 0", Valuation(1, 0, 0));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(*result);
  result = Check("vrf_id != 0", Valuation(0, 0, 0));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(*result);
}

TEST(Parser, ImplicationWithMaskAttribute) {
  const std::string constraint =
      "ether_type::mask != 0 -> ether_type == 0x0800";
  // Wildcard ether_type: antecedent false, constraint holds.
  auto r = Check(constraint, Valuation(1, 0, 0));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(*r);
  // Masked to IPv4: holds.
  r = Check(constraint, Valuation(1, 0x0800, 0xFFFF));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  // Masked to IPv6: violated.
  r = Check(constraint, Valuation(1, 0x86DD, 0xFFFF));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(Parser, PrefixLengthAttribute) {
  auto r = Check("dst_ip::prefix_length >= 16", Valuation(1, 0, 0));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(*r);
  r = Check("dst_ip::prefix_length == 32", Valuation(1, 0, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(Parser, PriorityBuiltin) {
  auto r = Check("priority > 5 && priority <= 10", Valuation(1, 0, 0));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(*r);
}

TEST(Parser, OperatorPrecedenceAndParens) {
  // && binds tighter than ||.
  auto r = Check("vrf_id == 0 || vrf_id == 1 && priority == 10",
                 Valuation(1, 0, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  r = Check("(vrf_id == 0 || vrf_id == 1) && priority == 99",
            Valuation(1, 0, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(Parser, NegationAndLiterals) {
  auto r = Check("!(vrf_id == 0) && true", Valuation(3, 0, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  r = Check("false || !false", Valuation(3, 0, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(Parser, HexLiterals) {
  auto r = Check("ether_type == 0x86dd",
                 Valuation(1, 0x86DD, 0xFFFF));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(Parser, Ipv4Literals) {
  // dst_ip in the valuation is 10.0.0.0/24.
  auto r = Check("dst_ip::value == 10.0.0.0", Valuation(1, 0, 0));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(*r);
  r = Check("dst_ip::value != 10.0.0.1", Valuation(1, 0, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  EXPECT_FALSE(ParseConstraint("dst_ip::value == 10.0.0", RoutingSchema())
                   .ok());
}

TEST(Parser, RejectsUnknownKey) {
  EXPECT_FALSE(ParseConstraint("ghost == 1", RoutingSchema()).ok());
}

TEST(Parser, RejectsMaskOnExactKey) {
  EXPECT_FALSE(ParseConstraint("vrf_id::mask == 1", RoutingSchema()).ok());
}

TEST(Parser, RejectsPrefixLengthOnTernaryKey) {
  EXPECT_FALSE(
      ParseConstraint("ether_type::prefix_length == 1", RoutingSchema())
          .ok());
}

TEST(Parser, RejectsNonBooleanTopLevel) {
  EXPECT_FALSE(ParseConstraint("vrf_id", RoutingSchema()).ok());
}

TEST(Parser, RejectsBooleanComparison) {
  EXPECT_FALSE(
      ParseConstraint("(vrf_id == 1) == (vrf_id == 2)", RoutingSchema())
          .ok());
}

TEST(Parser, RejectsTrailingTokens) {
  EXPECT_FALSE(ParseConstraint("vrf_id == 1 vrf_id", RoutingSchema()).ok());
}

TEST(Parser, RejectsUnbalancedParens) {
  EXPECT_FALSE(ParseConstraint("(vrf_id == 1", RoutingSchema()).ok());
}

TEST(Parser, ImpliesIsRightAssociative) {
  // a -> b -> c parses as a -> (b -> c); with a true, b false, the whole
  // is (false -> c) = true.
  auto r = Check("vrf_id == 1 -> vrf_id == 2 -> priority == 99",
                 Valuation(1, 0, 0));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(*r);
}

TEST(Eval, OmittedTernaryKeyIsWildcard) {
  // ether_type omitted: mask is 0.
  auto r = Check("ether_type::mask == 0", Valuation(1, 0, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(Ast, ToStringRoundTripReadable) {
  auto parsed = ParseConstraint("vrf_id != 0 && (priority > 1)",
                                RoutingSchema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ToString(), "((vrf_id != 0) && (priority > 1))");
}

}  // namespace
}  // namespace switchv::p4constraints
