// Tests for the extension features: P4 source rendering (living
// documentation), packet-cache persistence, and data-plane validation over
// fuzzed state (§7).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "models/entry_gen.h"
#include "p4ir/p4_source.h"
#include "switchv/experiment.h"
#include "symbolic/packet_gen.h"

namespace switchv {
namespace {

TEST(P4Source, RendersTheMiddleblockModel) {
  auto model = models::BuildSaiProgram(models::Role::kMiddleblock);
  ASSERT_TRUE(model.ok());
  const std::string source = p4ir::ToP4Source(*model);
  // Headers, tables, annotations, and control flow are all present.
  EXPECT_NE(source.find("header ipv4_t {"), std::string::npos);
  EXPECT_NE(source.find("bit<32> dst_addr;"), std::string::npos);
  EXPECT_NE(source.find("@entry_restriction(\"vrf_id != 0\")"),
            std::string::npos);
  EXPECT_NE(source.find("table vrf_tbl {"), std::string::npos);
  EXPECT_NE(source.find("@refers_to(vrf_tbl, vrf_id)"), std::string::npos);
  EXPECT_NE(source.find("action set_nexthop_id("), std::string::npos);
  EXPECT_NE(source.find("ipv4_tbl.apply();"), std::string::npos);
  EXPECT_NE(source.find("if ipv4.isValid()"), std::string::npos);
  EXPECT_NE(source.find("implementation = action_selector"),
            std::string::npos);
  // The fixed TTL trap shows up as documentation of switch behaviour.
  EXPECT_NE(source.find("trap_ttl();"), std::string::npos);
}

TEST(P4Source, ModelVariantsRenderDifferently) {
  auto correct = models::BuildSaiProgram(models::Role::kMiddleblock);
  models::ModelOptions buggy_options;
  buggy_options.omit_ttl_trap = true;
  auto buggy = models::BuildSaiProgram(models::Role::kMiddleblock,
                                       buggy_options);
  ASSERT_TRUE(correct.ok() && buggy.ok());
  const std::string correct_source = p4ir::ToP4Source(*correct);
  const std::string buggy_source = p4ir::ToP4Source(*buggy);
  EXPECT_NE(correct_source, buggy_source);
  EXPECT_EQ(buggy_source.find("trap_ttl();"), std::string::npos);
}

TEST(PacketCachePersistence, SaveLoadRoundTrip) {
  auto model = models::BuildSaiProgram(models::Role::kMiddleblock);
  ASSERT_TRUE(model.ok());
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(*model);
  models::WorkloadSpec spec = ExperimentOptions::SmallWorkload();
  spec.num_ipv4_routes = 8;
  spec.num_ipv6_routes = 2;
  spec.num_acl_ingress = 4;
  spec.num_pre_ingress = 3;
  spec.num_nexthops = 4;
  spec.num_neighbors = 4;
  auto entries = models::GenerateEntries(info, models::Role::kMiddleblock,
                                         spec, 3);
  ASSERT_TRUE(entries.ok());

  symbolic::PacketCache cache;
  symbolic::GenerationStats cold;
  auto packets = symbolic::GeneratePackets(
      *model, models::SaiParserSpec(), *entries,
      symbolic::CoverageMode::kEntryCoverage, &cache, &cold);
  ASSERT_TRUE(packets.ok());
  ASSERT_FALSE(cold.cache_hit);

  const std::string path =
      ::testing::TempDir() + "/switchv_packet_cache_test.txt";
  ASSERT_TRUE(cache.Save(path).ok());

  // A fresh process (cache) loads the file and serves the lookup without
  // any Z3 work.
  symbolic::PacketCache reloaded;
  ASSERT_TRUE(reloaded.Load(path).ok());
  EXPECT_EQ(reloaded.size(), cache.size());
  symbolic::GenerationStats warm;
  auto cached = symbolic::GeneratePackets(
      *model, models::SaiParserSpec(), *entries,
      symbolic::CoverageMode::kEntryCoverage, &reloaded, &warm);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(warm.cache_hit);
  ASSERT_EQ(cached->size(), packets->size());
  for (std::size_t i = 0; i < packets->size(); ++i) {
    EXPECT_EQ((*cached)[i].bytes, (*packets)[i].bytes) << i;
    EXPECT_EQ((*cached)[i].ingress_port, (*packets)[i].ingress_port) << i;
    EXPECT_EQ((*cached)[i].target_id, (*packets)[i].target_id) << i;
  }
  std::remove(path.c_str());
}

TEST(PacketCachePersistence, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/switchv_garbage.txt";
  {
    std::ofstream file(path);
    file << "not a cache file\n";
  }
  symbolic::PacketCache cache;
  EXPECT_FALSE(cache.Load(path).ok());
  EXPECT_FALSE(cache.Load(path + ".does-not-exist").ok());
  std::remove(path.c_str());
}

TEST(FuzzedStateDataplane, HealthySwitchStaysClean) {
  // §7 extension: the dataplane phase runs against the state the fuzzer
  // left behind. On a healthy switch this must still be incident-free.
  auto model = models::BuildSaiProgram(models::Role::kMiddleblock);
  ASSERT_TRUE(model.ok());
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(*model);
  models::WorkloadSpec workload = ExperimentOptions::SmallWorkload();
  workload.num_ipv4_routes = 10;
  workload.num_acl_ingress = 6;
  auto entries = models::GenerateEntries(info, models::Role::kMiddleblock,
                                         workload, 2);
  ASSERT_TRUE(entries.ok());
  NightlyOptions options;
  options.control_plane.num_requests = 3;
  options.control_plane.updates_per_request = 15;
  options.run_dataplane = false;  // only the fuzzed-state dataplane pass
  options.dataplane_on_fuzzed_state = true;
  const NightlyReport report = RunNightlyValidation(
      nullptr, *model, models::SaiParserSpec(), *entries, options);
  for (const Incident& incident : report.incidents) {
    ADD_FAILURE() << DetectorName(incident.detector) << ": "
                  << incident.summary << " [" << incident.details << "]";
  }
  EXPECT_GT(report.packets_tested, 20);
}

TEST(FuzzedStateDataplane, FindsDataplaneBugOnFuzzedState) {
  // The DSCP re-marking bug is found even when the forwarding state under
  // test is fuzzer-produced rather than a clean replay.
  const sut::BugInfo* bug = sut::FindBug(sut::Fault::kDscpRemarkedToZero);
  ASSERT_NE(bug, nullptr);
  auto model = ModelForBug(*bug);
  ASSERT_TRUE(model.ok());
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(*model);
  models::WorkloadSpec workload = ExperimentOptions::SmallWorkload();
  workload.num_ipv4_routes = 10;
  workload.num_acl_ingress = 6;
  auto entries = models::GenerateEntries(info, models::Role::kMiddleblock,
                                         workload, 2);
  ASSERT_TRUE(entries.ok());
  sut::FaultRegistry faults;
  faults.Activate(bug->fault);
  NightlyOptions options;
  options.control_plane.num_requests = 3;
  options.control_plane.updates_per_request = 15;
  options.run_dataplane = false;
  options.dataplane_on_fuzzed_state = true;
  const NightlyReport report = RunNightlyValidation(
      &faults, *model, models::SaiParserSpec(), *entries, options);
  EXPECT_TRUE(report.bug_detected());
}

}  // namespace
}  // namespace switchv
