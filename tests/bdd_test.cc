#include <gtest/gtest.h>

#include "p4constraints/bdd.h"
#include "p4constraints/constraint_bdd.h"
#include "p4constraints/eval.h"
#include "p4constraints/parser.h"

namespace switchv::p4constraints {
namespace {

TEST(Bdd, TerminalIdentities) {
  BddManager m;
  EXPECT_EQ(m.And(BddManager::kTrue, BddManager::kFalse), BddManager::kFalse);
  EXPECT_EQ(m.Or(BddManager::kTrue, BddManager::kFalse), BddManager::kTrue);
  EXPECT_EQ(m.Not(BddManager::kTrue), BddManager::kFalse);
}

TEST(Bdd, HashConsingGivesStructuralEquality) {
  BddManager m;
  const BddRef a = m.And(m.Var(0), m.Var(1));
  const BddRef b = m.And(m.Var(1), m.Var(0));
  EXPECT_EQ(a, b);
  const BddRef c = m.Not(m.Or(m.Not(m.Var(0)), m.Not(m.Var(1))));
  EXPECT_EQ(a, c);  // De Morgan
}

TEST(Bdd, SatCountSimple) {
  BddManager m;
  // x0 over 3 vars: 4 satisfying assignments.
  EXPECT_DOUBLE_EQ(static_cast<double>(m.SatCount(m.Var(0), 3)), 4.0);
  // x0 && x1 over 3 vars: 2.
  EXPECT_DOUBLE_EQ(
      static_cast<double>(m.SatCount(m.And(m.Var(0), m.Var(1)), 3)), 2.0);
  // x0 ^ x1 over 2 vars: 2.
  EXPECT_DOUBLE_EQ(
      static_cast<double>(m.SatCount(m.Xor(m.Var(0), m.Var(1)), 2)), 2.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(m.SatCount(BddManager::kTrue, 4)),
                   16.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(m.SatCount(BddManager::kFalse, 4)),
                   0.0);
}

TEST(Bdd, SampleSatisfiesFunction) {
  BddManager m;
  const BddRef f = m.Or(m.And(m.Var(0), m.Var(2)), m.Not(m.Var(1)));
  Rng rng(7);
  std::vector<bool> a;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(m.Sample(f, 4, rng, a));
    const bool value = (a[0] && a[2]) || !a[1];
    EXPECT_TRUE(value);
  }
}

TEST(Bdd, SampleFailsOnUnsat) {
  BddManager m;
  Rng rng(7);
  std::vector<bool> a;
  EXPECT_FALSE(m.Sample(BddManager::kFalse, 4, rng, a));
  const BddRef contradiction = m.And(m.Var(0), m.Not(m.Var(0)));
  EXPECT_FALSE(m.Sample(contradiction, 4, rng, a));
}

TEST(Bdd, SampleIsRoughlyUniform) {
  BddManager m;
  // x0 || x1 over 2 vars: 3 solutions; each should appear ~1/3.
  const BddRef f = m.Or(m.Var(0), m.Var(1));
  Rng rng(11);
  std::vector<bool> a;
  int counts[4] = {0, 0, 0, 0};
  const int kRuns = 3000;
  for (int i = 0; i < kRuns; ++i) {
    ASSERT_TRUE(m.Sample(f, 2, rng, a));
    counts[(a[0] ? 2 : 0) + (a[1] ? 1 : 0)]++;
  }
  EXPECT_EQ(counts[0], 0);  // 00 is not a solution
  for (int s = 1; s < 4; ++s) {
    EXPECT_GT(counts[s], kRuns / 5);
    EXPECT_LT(counts[s], kRuns / 2);
  }
}

TEST(Bdd, FlipNodeChangesFunction) {
  BddManager m;
  const BddRef f = m.And(m.Var(0), m.Var(1));
  const auto nodes = m.ReachableInternalNodes(f);
  ASSERT_FALSE(nodes.empty());
  const BddRef flipped = m.FlipNode(f, nodes[0]);
  EXPECT_NE(flipped, f);
}

TableSchema AclSchema() {
  TableSchema schema;
  schema.keys = {
      {"vrf_id", 12, KeySchema::Kind::kExact},
      {"dst_ip", 32, KeySchema::Kind::kLpm},
      {"ether_type", 16, KeySchema::Kind::kTernary},
      {"in_port", 4, KeySchema::Kind::kOptional},
  };
  return schema;
}

// Cross-check: every sample from the compiled BDD satisfies the constraint
// per the reference evaluator, and every violating sample refutes it.
TEST(ConstraintBdd, SamplesAgreeWithReferenceEvaluator) {
  const std::string source =
      "vrf_id != 0 && (ether_type::mask != 0 -> ether_type == 0x0800)";
  auto compiled = ConstraintBdd::Compile(source, AclSchema());
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  auto parsed = ParseConstraint(source, AclSchema());
  ASSERT_TRUE(parsed.ok());

  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    auto sample = compiled->SampleSatisfying(rng);
    ASSERT_TRUE(sample.ok()) << sample.status();
    auto verdict = EvalConstraint(*parsed, *sample);
    ASSERT_TRUE(verdict.ok());
    EXPECT_TRUE(*verdict) << "satisfying sample " << i
                          << " violates the constraint";
  }
  for (int i = 0; i < 50; ++i) {
    auto sample = compiled->SampleViolating(rng);
    ASSERT_TRUE(sample.ok()) << sample.status();
    auto verdict = EvalConstraint(*parsed, *sample);
    ASSERT_TRUE(verdict.ok());
    EXPECT_FALSE(*verdict) << "violating sample " << i
                           << " satisfies the constraint";
  }
}

TEST(ConstraintBdd, SamplesAreWellFormed) {
  auto compiled = ConstraintBdd::Compile("vrf_id != 0", AclSchema());
  ASSERT_TRUE(compiled.ok());
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    auto sample = compiled->SampleSatisfying(rng);
    ASSERT_TRUE(sample.ok());
    // Ternary canonical form: value under mask.
    const KeyValuation& ether = sample->keys.at("ether_type");
    EXPECT_EQ(ether.value & ~ether.mask, static_cast<uint128>(0));
    // Optional: wildcard or exact.
    const KeyValuation& port = sample->keys.at("in_port");
    EXPECT_TRUE(port.mask == 0 || port.mask == 0xF);
    // LPM: prefix within width, value within prefix.
    const KeyValuation& dst = sample->keys.at("dst_ip");
    EXPECT_LE(dst.prefix_len, 32);
    EXPECT_EQ(dst.value & ~dst.mask, static_cast<uint128>(0));
  }
}

TEST(ConstraintBdd, UnsatConstraintReportsNotFound) {
  auto compiled = ConstraintBdd::Compile("vrf_id != vrf_id", AclSchema());
  ASSERT_TRUE(compiled.ok());
  Rng rng(1);
  EXPECT_EQ(compiled->SampleSatisfying(rng).status().code(),
            StatusCode::kNotFound);
}

TEST(ConstraintBdd, TautologyHasNoViolation) {
  auto compiled = ConstraintBdd::Compile("true", AclSchema());
  ASSERT_TRUE(compiled.ok());
  Rng rng(1);
  EXPECT_EQ(compiled->SampleViolating(rng).status().code(),
            StatusCode::kNotFound);
}

TEST(ConstraintBdd, EmptyConstraintSamplesWellFormedEntries) {
  auto compiled = ConstraintBdd::Compile("", AclSchema());
  ASSERT_TRUE(compiled.ok());
  Rng rng(9);
  auto sample = compiled->SampleSatisfying(rng);
  ASSERT_TRUE(sample.ok());
}

TEST(ConstraintBdd, PrefixLengthConstraintsRespected) {
  auto compiled =
      ConstraintBdd::Compile("dst_ip::prefix_length == 24", AclSchema());
  ASSERT_TRUE(compiled.ok());
  Rng rng(13);
  for (int i = 0; i < 30; ++i) {
    auto sample = compiled->SampleSatisfying(rng);
    ASSERT_TRUE(sample.ok());
    EXPECT_EQ(sample->keys.at("dst_ip").prefix_len, 24);
  }
}

}  // namespace
}  // namespace switchv::p4constraints
