#include "util/status.h"

#include <gtest/gtest.h>

#include "util/fingerprint.h"
#include "util/rng.h"
#include "util/strings.h"

namespace switchv {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad field");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad field");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  SWITCHV_ASSIGN_OR_RETURN(int half, Half(x));
  SWITCHV_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(StatusOr, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3, odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(StatusCodeName, CoversCanonicalCodes) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "RESOURCE_EXHAUSTED");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
}

TEST(Strings, Split) {
  const auto pieces = StrSplit("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
}

TEST(Strings, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(Strings, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(Strings, BytesToHex) {
  EXPECT_EQ(BytesToHex(std::string("\x0A\xFF", 2)), "0aff");
}

TEST(Fingerprint, OrderSensitive) {
  Fingerprint a;
  a.AddBytes("x").AddBytes("y");
  Fingerprint b;
  b.AddBytes("y").AddBytes("x");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Fingerprint, Deterministic) {
  Fingerprint a;
  a.AddU64(7).AddBytes("table");
  Fingerprint b;
  b.AddU64(7).AddBytes("table");
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.Uniform(5, 10);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 10u);
  }
}

TEST(Rng, BitsRespectWidth) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Bits(12).width(), 12);
    EXPECT_LE(rng.Bits(12).ToUint64(), 0xFFFu);
  }
}

}  // namespace
}  // namespace switchv
