#include <gtest/gtest.h>

#include "models/entry_gen.h"
#include "models/sai_model.h"
#include "p4runtime/validator.h"

namespace switchv::models {
namespace {

TEST(SaiModel, BothRolesValidate) {
  for (Role role : {Role::kMiddleblock, Role::kWan}) {
    auto program = BuildSaiProgram(role);
    ASSERT_TRUE(program.ok()) << RoleName(role) << ": " << program.status();
  }
}

TEST(SaiModel, RolesShareCommonTablesButDiffer) {
  auto mb = BuildSaiProgram(Role::kMiddleblock);
  auto wan = BuildSaiProgram(Role::kWan);
  ASSERT_TRUE(mb.ok() && wan.ok());
  // Common SAI components exist in both instantiations.
  for (const char* table :
       {"vrf_tbl", "ipv4_tbl", "ipv6_tbl", "nexthop_tbl", "neighbor_tbl",
        "router_interface_tbl", "wcmp_group_tbl", "acl_ingress_tbl",
        "mirror_session_tbl", "egress_rif_tbl"}) {
    EXPECT_NE(mb->FindTable(table), nullptr) << table;
    EXPECT_NE(wan->FindTable(table), nullptr) << table;
  }
  // Role-specific: tunnels only in WAN.
  EXPECT_EQ(mb->FindTable("tunnel_encap_tbl"), nullptr);
  EXPECT_NE(wan->FindTable("tunnel_encap_tbl"), nullptr);
  EXPECT_NE(wan->FindTable("decap_tbl"), nullptr);
  // Role-specific ACL: WAN matches on more keys (expressivity/scalability
  // trade-off, paper §3).
  EXPECT_GT(wan->FindTable("acl_ingress_tbl")->keys.size(),
            mb->FindTable("acl_ingress_tbl")->keys.size());
  EXPECT_NE(mb->Fingerprint(), wan->Fingerprint());
}

TEST(SaiModel, PaperTableCountIsRealistic) {
  // The paper reports 14 tables for the PINS models; ours are comparable.
  auto mb = BuildSaiProgram(Role::kMiddleblock);
  ASSERT_TRUE(mb.ok());
  EXPECT_GE(mb->tables.size(), 12u);
  auto wan = BuildSaiProgram(Role::kWan);
  ASSERT_TRUE(wan.ok());
  EXPECT_GE(wan->tables.size(), 14u);
}

TEST(SaiModel, VrfRestrictionPresent) {
  auto mb = BuildSaiProgram(Role::kMiddleblock);
  ASSERT_TRUE(mb.ok());
  EXPECT_EQ(mb->FindTable("vrf_tbl")->entry_restriction, "vrf_id != 0");
}

TEST(SaiModel, RefersToAnnotationsPresent) {
  auto mb = BuildSaiProgram(Role::kMiddleblock);
  ASSERT_TRUE(mb.ok());
  const p4ir::Table* ipv4 = mb->FindTable("ipv4_tbl");
  ASSERT_NE(ipv4, nullptr);
  const p4ir::KeyDef* vrf_key = ipv4->FindKey("vrf_id");
  ASSERT_NE(vrf_key, nullptr);
  ASSERT_TRUE(vrf_key->refers_to.has_value());
  EXPECT_EQ(vrf_key->refers_to->table, "vrf_tbl");
  EXPECT_FALSE(ipv4->param_refers_to.empty());
}

TEST(SaiModel, ModelBugVariantsDiffer) {
  auto base = BuildSaiProgram(Role::kMiddleblock);
  ASSERT_TRUE(base.ok());
  for (int variant = 0; variant < 4; ++variant) {
    ModelOptions options;
    options.omit_ttl_trap = variant == 0;
    options.omit_broadcast_drop = variant == 1;
    options.acl_after_rewrite = variant == 2;
    options.acl_wrong_icmp_field = variant == 3;
    auto buggy = BuildSaiProgram(Role::kMiddleblock, options);
    ASSERT_TRUE(buggy.ok()) << "variant " << variant << ": "
                            << buggy.status();
    EXPECT_NE(base->Fingerprint(), buggy->Fingerprint())
        << "variant " << variant;
  }
}

class EntryGenTest : public ::testing::TestWithParam<Role> {};

TEST_P(EntryGenTest, GeneratedEntriesAreValid) {
  const Role role = GetParam();
  auto program = BuildSaiProgram(role);
  ASSERT_TRUE(program.ok());
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(*program);
  const WorkloadSpec spec =
      role == Role::kMiddleblock ? WorkloadSpec::Inst1() : WorkloadSpec::Inst2();
  auto entries = GenerateEntries(info, role, spec, /*seed=*/1);
  ASSERT_TRUE(entries.ok()) << entries.status();
  EXPECT_EQ(static_cast<int>(entries->size()), spec.TotalEntries());
  // Every generated entry is syntactically valid AND constraint compliant.
  for (const p4rt::TableEntry& entry : *entries) {
    const Status status = p4rt::ValidateEntry(info, entry);
    EXPECT_TRUE(status.ok()) << entry.ToString(&info) << " -> " << status;
  }
}

TEST_P(EntryGenTest, EntryIdentitiesAreUnique) {
  const Role role = GetParam();
  auto program = BuildSaiProgram(role);
  ASSERT_TRUE(program.ok());
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(*program);
  const WorkloadSpec spec =
      role == Role::kMiddleblock ? WorkloadSpec::Inst1() : WorkloadSpec::Inst2();
  auto entries = GenerateEntries(info, role, spec, 1);
  ASSERT_TRUE(entries.ok());
  std::set<std::string> keys;
  for (const p4rt::TableEntry& entry : *entries) {
    EXPECT_TRUE(keys.insert(entry.KeyFingerprint()).second)
        << "duplicate identity: " << entry.ToString(&info);
  }
}

TEST_P(EntryGenTest, DeterministicInSeed) {
  const Role role = GetParam();
  auto program = BuildSaiProgram(role);
  ASSERT_TRUE(program.ok());
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(*program);
  auto a = GenerateEntries(info, role, WorkloadSpec::Inst1(), 7);
  auto b = GenerateEntries(info, role, WorkloadSpec::Inst1(), 7);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i], (*b)[i]) << "entry " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Roles, EntryGenTest,
                         ::testing::Values(Role::kMiddleblock, Role::kWan),
                         [](const auto& param) {
                           return std::string(RoleName(param.param));
                         });

TEST(WorkloadSpec, PaperEntryCounts) {
  // Table 3: Inst1 has 798 entries, Inst2 has 1314.
  EXPECT_EQ(WorkloadSpec::Inst1().TotalEntries(), 798);
  EXPECT_EQ(WorkloadSpec::Inst2().TotalEntries(), 1314);
}

}  // namespace
}  // namespace switchv::models
