// Property-based and parameterized sweep tests: randomized cross-checks of
// independent implementations against each other.
#include <gtest/gtest.h>

#include "bmv2/interpreter.h"
#include "fuzzer/generator.h"
#include "models/entry_gen.h"
#include "models/sai_model.h"
#include "p4constraints/constraint_bdd.h"
#include "p4runtime/validator.h"
#include "sut/lpm_trie.h"
#include "sut/switch_stack.h"
#include "util/rng.h"

namespace switchv {
namespace {

// A small production-like workload used by the randomized differential.
models::WorkloadSpec SmallDifferentialWorkload();

// ---------------------------------------------------------------------------
// BitString: canonical encoding round-trips across every width.
// ---------------------------------------------------------------------------

class BitStringWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitStringWidthSweep, CanonicalRoundTripIsIdentity) {
  const int width = GetParam();
  Rng rng(static_cast<std::uint64_t>(width));
  for (int i = 0; i < 200; ++i) {
    const BitString value = rng.Bits(width);
    auto round = BitString::FromBytes(value.ToCanonicalBytes(), width);
    ASSERT_TRUE(round.ok()) << value.ToString();
    EXPECT_EQ(*round, value);
    // Padded form parses too (leniently) and preserves the value.
    auto padded = BitString::FromBytes(value.ToPaddedBytes(), width,
                                       /*require_canonical=*/false);
    ASSERT_TRUE(padded.ok());
    EXPECT_EQ(padded->value(), value.value());
  }
}

TEST_P(BitStringWidthSweep, PrefixMaskHasExpectedPopcount) {
  const int width = GetParam();
  for (int len = 0; len <= width; ++len) {
    const BitString mask = BitString::PrefixMask(len, width);
    int popcount = 0;
    uint128 v = mask.value();
    while (v != 0) {
      popcount += static_cast<int>(v & 1);
      v >>= 1;
    }
    EXPECT_EQ(popcount, len) << "width " << width << " len " << len;
    // Prefix masks are downward closed: mask & ~shorter_mask has no high bits.
    if (len > 0) {
      const BitString shorter = BitString::PrefixMask(len - 1, width);
      EXPECT_EQ((shorter & mask), shorter);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitStringWidthSweep,
                         ::testing::Values(1, 3, 8, 9, 12, 16, 31, 32, 33,
                                           48, 64, 65, 127, 128));

// ---------------------------------------------------------------------------
// LPM trie vs a linear-scan reference, random workloads.
// ---------------------------------------------------------------------------

class LpmTrieProperty : public ::testing::TestWithParam<int> {};

TEST_P(LpmTrieProperty, AgreesWithLinearScan) {
  const int width = GetParam();
  Rng rng(static_cast<std::uint64_t>(width) * 7919);
  sut::LpmTrie<int> trie(width);
  struct Prefix {
    uint128 value;
    int len;
    int id;
  };
  std::vector<Prefix> prefixes;
  for (int i = 0; i < 300; ++i) {
    const int len = static_cast<int>(
        rng.Uniform(0, static_cast<std::uint64_t>(width)));
    const uint128 mask =
        len == 0 ? 0
                 : (LowBitMask(len) << (width - len)) & LowBitMask(width);
    const uint128 value = rng.Bits(width).value() & mask;
    // Overwrite semantics: keep the latest id for duplicate prefixes.
    bool replaced = false;
    for (Prefix& p : prefixes) {
      if (p.len == len && p.value == value) {
        p.id = i;
        replaced = true;
      }
    }
    if (!replaced) prefixes.push_back(Prefix{value, len, i});
    trie.Insert(value, len, i);
  }
  auto linear_lookup = [&](uint128 key) -> const Prefix* {
    const Prefix* best = nullptr;
    for (const Prefix& p : prefixes) {
      const uint128 mask =
          p.len == 0
              ? 0
              : (LowBitMask(p.len) << (width - p.len)) & LowBitMask(width);
      if ((key & mask) != p.value) continue;
      if (best == nullptr || p.len > best->len) best = &p;
    }
    return best;
  };
  for (int i = 0; i < 500; ++i) {
    // Half the keys are perturbed installed prefixes (interesting), half
    // uniform random.
    uint128 key;
    if (i % 2 == 0 && !prefixes.empty()) {
      const Prefix& p = prefixes[rng.Index(prefixes.size())];
      key = p.value | (rng.Bits(width).value() &
                       ~((p.len == 0 ? 0
                                     : (LowBitMask(p.len) << (width - p.len))) &
                         LowBitMask(width)));
    } else {
      key = rng.Bits(width).value();
    }
    const Prefix* expected = linear_lookup(key);
    const int* got = trie.Lookup(key);
    if (expected == nullptr) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, expected->id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LpmTrieProperty,
                         ::testing::Values(8, 32, 128));

// ---------------------------------------------------------------------------
// Constraint BDD vs the reference evaluator over randomly generated
// constraints: every satisfying sample satisfies, every violating sample
// violates.
// ---------------------------------------------------------------------------

class ConstraintFuzz : public ::testing::TestWithParam<int> {};

// A random constraint generator over a fixed schema.
std::string RandomConstraint(Rng& rng, int depth) {
  static const char* kIntAtoms[] = {
      "vrf_id", "ether_type", "ether_type::mask", "dst_ip::value",
      "dst_ip::mask", "route::prefix_length", "priority",
  };
  static const char* kCmp[] = {"==", "!=", "<", "<=", ">", ">="};
  if (depth <= 0 || rng.Chance(0.4)) {
    const std::string lhs = kIntAtoms[rng.Index(std::size(kIntAtoms))];
    const std::string op = kCmp[rng.Index(std::size(kCmp))];
    const std::string rhs = std::to_string(rng.Uniform(0, 0xFFFF));
    return "(" + lhs + " " + op + " " + rhs + ")";
  }
  switch (rng.Uniform(0, 3)) {
    case 0:
      return "(" + RandomConstraint(rng, depth - 1) + " && " +
             RandomConstraint(rng, depth - 1) + ")";
    case 1:
      return "(" + RandomConstraint(rng, depth - 1) + " || " +
             RandomConstraint(rng, depth - 1) + ")";
    case 2:
      return "(!" + RandomConstraint(rng, depth - 1) + ")";
    default:
      return "(" + RandomConstraint(rng, depth - 1) + " -> " +
             RandomConstraint(rng, depth - 1) + ")";
  }
}

TEST_P(ConstraintFuzz, BddSamplesAgreeWithEvaluator) {
  p4constraints::TableSchema schema;
  schema.keys = {
      {"vrf_id", 12, p4constraints::KeySchema::Kind::kExact},
      {"ether_type", 16, p4constraints::KeySchema::Kind::kTernary},
      {"dst_ip", 32, p4constraints::KeySchema::Kind::kTernary},
      {"route", 24, p4constraints::KeySchema::Kind::kLpm},
  };
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::string source = RandomConstraint(rng, 3);
  SCOPED_TRACE(source);
  auto parsed = p4constraints::ParseConstraint(source, schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto compiled = p4constraints::ConstraintBdd::Compile(source, schema);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  for (int i = 0; i < 20; ++i) {
    auto sat = compiled->SampleSatisfying(rng);
    if (sat.ok()) {
      auto verdict = p4constraints::EvalConstraint(*parsed, *sat);
      ASSERT_TRUE(verdict.ok());
      EXPECT_TRUE(*verdict) << "sample " << i;
    }
    auto unsat = compiled->SampleViolating(rng);
    if (unsat.ok()) {
      auto verdict = p4constraints::EvalConstraint(*parsed, *unsat);
      ASSERT_TRUE(verdict.ok());
      EXPECT_FALSE(*verdict) << "sample " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstraintFuzz, ::testing::Range(1, 25));

// ---------------------------------------------------------------------------
// Mutation sweep: for every mutation kind, requests produced by that
// mutation are never wrongly accepted by the healthy switch, and never
// crash it.
// ---------------------------------------------------------------------------

class MutationSweep : public ::testing::TestWithParam<fuzzer::Mutation> {};

TEST_P(MutationSweep, HealthySwitchRejectsMutatedRequests) {
  const fuzzer::Mutation mutation = GetParam();
  auto model = models::BuildSaiProgram(models::Role::kMiddleblock);
  ASSERT_TRUE(model.ok());
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(*model);
  models::WorkloadSpec spec;
  spec.num_ipv4_routes = 20;
  auto base = models::GenerateEntries(info, models::Role::kMiddleblock, spec,
                                      3);
  ASSERT_TRUE(base.ok());

  sut::SwitchUnderTest sut(nullptr, models::DefaultCloneSessions(),
                           models::kCpuPort);
  ASSERT_TRUE(sut.SetForwardingPipelineConfig(info).ok());
  p4rt::WriteRequest seed;
  for (const p4rt::TableEntry& entry : *base) {
    seed.updates.push_back(p4rt::Update{p4rt::UpdateType::kInsert, entry});
  }
  ASSERT_TRUE(sut.Write(seed).all_ok());

  fuzzer::SwitchStateView state(info);
  state.Reset(*base);
  fuzzer::FuzzerOptions options;
  options.invalid_probability = 1.0;  // only mutated requests
  fuzzer::RequestGenerator generator(
      info, options, static_cast<std::uint64_t>(mutation) + 100);
  int exercised = 0;
  for (int round = 0; round < 40 && exercised < 30; ++round) {
    const auto batch = generator.GenerateBatch(state, 30);
    for (const fuzzer::AnnotatedUpdate& update : batch) {
      if (update.mutation != mutation) continue;
      ++exercised;
      p4rt::WriteRequest request;
      request.updates.push_back(update.update);
      const p4rt::WriteResponse response = sut.Write(request);
      ASSERT_EQ(response.statuses.size(), 1u);
      if (mutation == fuzzer::Mutation::kDuplicateEntry) {
        EXPECT_EQ(response.statuses[0].code(), StatusCode::kAlreadyExists)
            << update.update.entry.ToString(&info);
      } else if (mutation == fuzzer::Mutation::kDeleteNonExisting) {
        EXPECT_EQ(response.statuses[0].code(), StatusCode::kNotFound)
            << update.update.entry.ToString(&info);
      } else {
        EXPECT_FALSE(response.statuses[0].ok())
            << fuzzer::MutationName(mutation) << " accepted: "
            << update.update.entry.ToString(&info);
      }
      // The switch stays responsive after the invalid request.
      auto read = sut.Read(p4rt::ReadRequest{});
      ASSERT_TRUE(read.ok());
    }
  }
  EXPECT_GT(exercised, 0) << "mutation never produced a request";
}

INSTANTIATE_TEST_SUITE_P(
    AllMutations, MutationSweep,
    ::testing::ValuesIn(std::begin(fuzzer::kAllMutations),
                        std::end(fuzzer::kAllMutations)),
    [](const auto& param) {
      return std::string(fuzzer::MutationName(param.param));
    });

// ---------------------------------------------------------------------------
// Randomized dataplane differential: beyond the structured workloads, throw
// randomized packets (valid and garbage) at both dataplanes.
// ---------------------------------------------------------------------------

class RandomPacketDifferential : public ::testing::TestWithParam<int> {};

TEST_P(RandomPacketDifferential, AsicMatchesReferenceOnRandomBytes) {
  auto model = models::BuildSaiProgram(models::Role::kMiddleblock);
  ASSERT_TRUE(model.ok());
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(*model);
  auto entries = models::GenerateEntries(
      info, models::Role::kMiddleblock, SmallDifferentialWorkload(), 9);
  ASSERT_TRUE(entries.ok());

  sut::SwitchUnderTest sut(nullptr, models::DefaultCloneSessions(),
                           models::kCpuPort);
  ASSERT_TRUE(sut.SetForwardingPipelineConfig(info).ok());
  p4rt::WriteRequest request;
  for (const p4rt::TableEntry& entry : *entries) {
    request.updates.push_back(p4rt::Update{p4rt::UpdateType::kInsert, entry});
  }
  ASSERT_TRUE(sut.Write(request).all_ok());
  bmv2::Interpreter reference(*model, models::SaiParserSpec(),
                              models::DefaultCloneSessions());
  ASSERT_TRUE(reference.InstallEntries(*entries).ok());

  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  for (int i = 0; i < 150; ++i) {
    // Random-length random bytes; half of them get a plausible Ethernet+IP
    // prelude so deeper stages are reached.
    std::string bytes;
    const std::size_t len = rng.Uniform(0, 120);
    for (std::size_t b = 0; b < len; ++b) {
      bytes.push_back(static_cast<char>(rng.Uniform(0, 255)));
    }
    if (i % 2 == 0 && bytes.size() >= 34) {
      bytes[12] = '\x08';
      bytes[13] = '\x00';
      bytes[14] = '\x45';
    }
    const auto port = static_cast<std::uint16_t>(rng.Uniform(1, 32));
    const packet::ForwardingOutcome observed = sut.InjectPacket(bytes, port);
    auto behaviors = reference.EnumerateBehaviors(bytes, port);
    ASSERT_TRUE(behaviors.ok());
    bool admissible = false;
    for (const packet::ForwardingOutcome& b : *behaviors) {
      if (b == observed) admissible = true;
    }
    EXPECT_TRUE(admissible)
        << "packet " << i << " (" << bytes.size() << " bytes) diverges:\n"
        << " observed " << observed.Canonical().substr(0, 120) << "\n"
        << " expected " << (*behaviors)[0].Canonical().substr(0, 120);
    if (!admissible) break;
  }
}

models::WorkloadSpec SmallDifferentialWorkload() {
  models::WorkloadSpec spec;
  spec.num_vrfs = 3;
  spec.num_ipv4_routes = 24;
  spec.num_ipv6_routes = 8;
  spec.num_wcmp_groups = 3;
  spec.num_nexthops = 8;
  spec.num_neighbors = 6;
  spec.num_rifs = 5;
  spec.num_acl_ingress = 8;
  spec.num_pre_ingress = 5;
  spec.num_l3_admit = 3;
  spec.num_mirror_sessions = 2;
  spec.num_egress_rifs = 3;
  return spec;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPacketDifferential,
                         ::testing::Range(1, 6));

}  // namespace
}  // namespace switchv
