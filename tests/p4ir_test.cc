#include <gtest/gtest.h>

#include "p4ir/builder.h"
#include "p4ir/p4info.h"
#include "p4ir/program.h"

namespace switchv::p4ir {
namespace {

// A minimal valid program used across tests: one metadata field, one table.
StatusOr<Program> TinyProgram() {
  ProgramBuilder b("tiny");
  b.AddHeader("h", {{"h.f", 8}});
  b.AddMetadata("m.x", 8);
  b.AddAction("nop", {}, {});
  b.AddAction("set_x", {ParamDef{"v", 8}},
              {Statement::Assign("m.x", Expr::Param("v", 8))});
  b.AddTable("t")
      .Key("f", "h.f", 8, MatchKind::kExact)
      .Action("set_x")
      .DefaultAction("nop")
      .Size(16);
  b.SetIngress({ControlNode::ApplyTable("t")});
  return std::move(b).Build();
}

TEST(Program, TinyProgramValidates) {
  auto program = TinyProgram();
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->FieldWidth("h.f"), 8);
  EXPECT_EQ(program->FieldWidth("m.x"), 8);
  EXPECT_EQ(program->FieldWidth("nope"), 0);
}

TEST(Program, RejectsDuplicateTable) {
  ProgramBuilder b("dup");
  b.AddHeader("h", {{"h.f", 8}});
  b.AddAction("nop", {}, {});
  b.AddTable("t").Key("f", "h.f", 8, MatchKind::kExact).Action("nop")
      .DefaultAction("nop").Size(1);
  b.AddTable("t").Key("f", "h.f", 8, MatchKind::kExact).Action("nop")
      .DefaultAction("nop").Size(1);
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(Program, RejectsUnknownActionInTable) {
  ProgramBuilder b("bad");
  b.AddHeader("h", {{"h.f", 8}});
  b.AddAction("nop", {}, {});
  b.AddTable("t").Key("f", "h.f", 8, MatchKind::kExact).Action("ghost")
      .DefaultAction("nop").Size(1);
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(Program, RejectsTableAppliedTwice) {
  ProgramBuilder b("twice");
  b.AddHeader("h", {{"h.f", 8}});
  b.AddAction("nop", {}, {});
  b.AddTable("t").Key("f", "h.f", 8, MatchKind::kExact).Action("nop")
      .DefaultAction("nop").Size(1);
  b.SetIngress({ControlNode::ApplyTable("t"), ControlNode::ApplyTable("t")});
  auto program = std::move(b).Build();
  EXPECT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("single-pass"),
            std::string::npos);
}

TEST(Program, RejectsDanglingRefersTo) {
  ProgramBuilder b("dangling");
  b.AddHeader("h", {{"h.f", 8}});
  b.AddAction("nop", {}, {});
  b.AddTable("t")
      .ReferencingKey("f", "h.f", 8, MatchKind::kExact, "ghost_tbl", "k")
      .Action("nop")
      .DefaultAction("nop")
      .Size(1);
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(Program, RejectsAssignmentWidthMismatch) {
  ProgramBuilder b("widths");
  b.AddHeader("h", {{"h.f", 8}});
  b.AddAction("bad", {}, {Statement::Assign("h.f", Expr::ConstantU(1, 16))});
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(Program, RejectsZeroSizeTable) {
  ProgramBuilder b("zero");
  b.AddHeader("h", {{"h.f", 8}});
  b.AddAction("nop", {}, {});
  b.AddTable("t").Key("f", "h.f", 8, MatchKind::kExact).Action("nop")
      .DefaultAction("nop");
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(Program, FingerprintStableAndSensitive) {
  auto a = TinyProgram();
  auto b = TinyProgram();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->Fingerprint(), b->Fingerprint());
  b->tables[0].size = 32;
  EXPECT_NE(a->Fingerprint(), b->Fingerprint());
}

TEST(Expr, WidthRules) {
  const Expr cmp = Expr::Eq(Expr::ConstantU(1, 8), Expr::ConstantU(2, 8));
  EXPECT_EQ(cmp.width(), 1);
  const Expr add = Expr::Binary(BinaryOp::kAdd, Expr::ConstantU(1, 8),
                                Expr::ConstantU(2, 8));
  EXPECT_EQ(add.width(), 8);
  EXPECT_EQ(Expr::Valid("ipv4").width(), 1);
}

TEST(Expr, ToStringReadable) {
  const Expr e = Expr::And(Expr::Valid("ipv4"),
                           Expr::Eq(Expr::Field("ipv4.ttl", 8),
                                    Expr::ConstantU(1, 8)));
  EXPECT_EQ(e.ToString(), "(ipv4.isValid() && (ipv4.ttl == 0x1/8))");
}

TEST(P4Info, IdsAreDeterministicAndPrefixed) {
  auto program = TinyProgram();
  ASSERT_TRUE(program.ok());
  const P4Info info = P4Info::FromProgram(*program);
  ASSERT_EQ(info.tables().size(), 1u);
  ASSERT_EQ(info.actions().size(), 2u);
  EXPECT_EQ(info.tables()[0].id, P4Info::kTableIdBase + 1);
  EXPECT_EQ(info.actions()[0].id, P4Info::kActionIdBase + 1);
  EXPECT_EQ(info.FindTableByName("t")->id, info.tables()[0].id);
  EXPECT_EQ(info.FindTable(info.tables()[0].id)->name, "t");
  EXPECT_EQ(info.FindTable(9999), nullptr);
}

TEST(P4Info, MatchFieldAndParamIdsAreOneBased) {
  auto program = TinyProgram();
  ASSERT_TRUE(program.ok());
  const P4Info info = P4Info::FromProgram(*program);
  const TableInfo& t = info.tables()[0];
  ASSERT_EQ(t.match_fields.size(), 1u);
  EXPECT_EQ(t.match_fields[0].id, 1u);
  const ActionInfo* set_x = info.FindActionByName("set_x");
  ASSERT_NE(set_x, nullptr);
  ASSERT_EQ(set_x->params.size(), 1u);
  EXPECT_EQ(set_x->params[0].id, 1u);
}

TEST(P4Info, RequiresPriorityFollowsMatchKinds) {
  ProgramBuilder b("prio");
  b.AddHeader("h", {{"h.f", 8}});
  b.AddAction("nop", {}, {});
  b.AddTable("ternary_t")
      .Key("f", "h.f", 8, MatchKind::kTernary)
      .Action("nop").DefaultAction("nop").Size(4);
  b.AddTable("exact_t")
      .Key("f", "h.f", 8, MatchKind::kExact)
      .Action("nop").DefaultAction("nop").Size(4);
  auto program = std::move(b).Build();
  ASSERT_TRUE(program.ok()) << program.status();
  const P4Info info = P4Info::FromProgram(*program);
  EXPECT_TRUE(info.FindTableByName("ternary_t")->requires_priority);
  EXPECT_FALSE(info.FindTableByName("exact_t")->requires_priority);
}

}  // namespace
}  // namespace switchv::p4ir
