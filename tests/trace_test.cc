// Observability tests: latency-histogram math, flight-recorder ring
// semantics, span-nesting determinism across parallelism levels, exporter
// round-trips (Chrome trace_event JSON, Prometheus text exposition), and
// per-incident layer attribution + replay traces.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "switchv/experiment.h"
#include "switchv/recorder.h"
#include "switchv/trace.h"

namespace switchv {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON parser, test-only: enough of RFC 8259 to round-trip the
// exporters. Parsing (not substring matching) is the point — a malformed
// escape or a missing comma must fail the test.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  static std::optional<JsonValue> Parse(std::string_view text) {
    JsonParser parser(text);
    std::optional<JsonValue> value = parser.ParseValue();
    if (!value.has_value()) return std::nullopt;
    parser.SkipSpace();
    if (parser.pos_ != text.size()) return std::nullopt;  // trailing junk
    return value;
  }

 private:
  explicit JsonParser(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  std::optional<JsonValue> ParseObject() {
    if (!Consume('{')) return std::nullopt;
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    SkipSpace();
    if (Consume('}')) return value;
    while (true) {
      std::optional<JsonValue> key = ParseString();
      if (!key.has_value() || !Consume(':')) return std::nullopt;
      std::optional<JsonValue> member = ParseValue();
      if (!member.has_value()) return std::nullopt;
      value.object.emplace_back(std::move(key->string), *std::move(member));
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseArray() {
    if (!Consume('[')) return std::nullopt;
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    SkipSpace();
    if (Consume(']')) return value;
    while (true) {
      std::optional<JsonValue> element = ParseValue();
      if (!element.has_value()) return std::nullopt;
      value.array.push_back(*std::move(element));
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    JsonValue value;
    value.type = JsonValue::Type::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        value.string.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': value.string.push_back('"'); break;
        case '\\': value.string.push_back('\\'); break;
        case '/': value.string.push_back('/'); break;
        case 'n': value.string.push_back('\n'); break;
        case 't': value.string.push_back('\t'); break;
        case 'r': value.string.push_back('\r'); break;
        case 'b': value.string.push_back('\b'); break;
        case 'f': value.string.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              return std::nullopt;
            }
            code = code * 16 +
                   (std::isdigit(static_cast<unsigned char>(h))
                        ? static_cast<unsigned>(h - '0')
                        : static_cast<unsigned>(std::tolower(h) - 'a') + 10);
          }
          // The exporters only emit \u00xx (control characters).
          value.string.push_back(static_cast<char>(code & 0xff));
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> ParseBool() {
    SkipSpace();
    JsonValue value;
    value.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      value.boolean = true;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return value;
    }
    return std::nullopt;
  }

  std::optional<JsonValue> ParseNull() {
    SkipSpace();
    if (text_.compare(pos_, 4, "null") != 0) return std::nullopt;
    pos_ += 4;
    return JsonValue{};
  }

  std::optional<JsonValue> ParseNumber() {
    SkipSpace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    try {
      value.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (...) {
      return std::nullopt;
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Latency histograms
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundsAreExponentialFromOneMicrosecond) {
  EXPECT_EQ(HistogramBucketUpperNs(0), 1000u);           // 1µs
  EXPECT_EQ(HistogramBucketUpperNs(1), 2000u);           // 2µs
  EXPECT_EQ(HistogramBucketUpperNs(10), 1024u * 1000u);  // ~1ms
  EXPECT_EQ(HistogramBucketUpperNs(kHistogramBuckets - 2),
            static_cast<std::uint64_t>(1000) << (kHistogramBuckets - 2));
  EXPECT_EQ(HistogramBucketUpperNs(kHistogramBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(HistogramTest, RecordFillsTheRightBucket) {
  LatencyHistogram hist;
  hist.Record(0);        // bucket 0
  hist.Record(1000);     // still bucket 0 (inclusive upper bound)
  hist.Record(1001);     // bucket 1
  hist.Record(5000000);  // 5ms -> bucket with upper 8.192ms = bucket 13
  hist.Record(std::numeric_limits<std::uint64_t>::max());  // overflow
  const HistogramSnapshot s = hist.Snapshot();
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[13], 1u);
  EXPECT_EQ(s.counts[kHistogramBuckets - 1], 1u);
  EXPECT_EQ(s.count, 5u);
}

TEST(HistogramTest, PercentilesInterpolateWithinBucket) {
  LatencyHistogram hist;
  // 100 observations in bucket 1 (1000, 2000]: ranks spread linearly.
  for (int i = 0; i < 100; ++i) hist.Record(1500);
  const HistogramSnapshot s = hist.Snapshot();
  // p50 -> rank 50 of 100 -> 50% through (1000, 2000].
  EXPECT_EQ(s.PercentileNs(0.50), 1500u);
  EXPECT_EQ(s.PercentileNs(0.90), 1900u);
  EXPECT_EQ(s.PercentileNs(1.00), 2000u);
}

TEST(HistogramTest, PercentileSpansBuckets) {
  LatencyHistogram hist;
  for (int i = 0; i < 90; ++i) hist.Record(500);    // bucket 0
  for (int i = 0; i < 10; ++i) hist.Record(900000);  // bucket 10
  const HistogramSnapshot s = hist.Snapshot();
  EXPECT_LE(s.PercentileNs(0.50), 1000u);
  const std::uint64_t p99 = s.PercentileNs(0.99);
  EXPECT_GT(p99, HistogramBucketUpperNs(9));
  EXPECT_LE(p99, HistogramBucketUpperNs(10));
}

TEST(HistogramTest, EmptyAndOverflowEdgeCases) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Snapshot().PercentileNs(0.50), 0u);
  // Overflow-only histogram: percentile reports the finite lower edge, not
  // UINT64_MAX.
  hist.Record(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(hist.Snapshot().PercentileNs(0.99),
            HistogramBucketUpperNs(kHistogramBuckets - 2));
}

TEST(MetricsTest, ZeroWallClockYieldsZeroRatesNotInfNan) {
  MetricsSnapshot s;
  s.updates_sent = 1000;
  s.packets_tested = 500;
  s.wall_seconds = 0;
  EXPECT_EQ(s.updates_per_second(), 0);
  EXPECT_EQ(s.packets_per_second(), 0);
  s.wall_seconds = -1;  // clock went backwards; still no inf/nan
  EXPECT_EQ(s.updates_per_second(), 0);
  for (const std::string& exported :
       {s.ToString(), s.ToPrometheus(), s.ToJson()}) {
    EXPECT_EQ(exported.find("inf"), std::string::npos) << exported;
    EXPECT_EQ(exported.find("nan"), std::string::npos) << exported;
  }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, RingWrapsKeepingNewestAndGlobalSequence) {
  FlightRecorder recorder(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    FlightEvent event;
    event.kind = FlightEvent::Kind::kWrite;
    event.units = i;
    recorder.Record(std::move(event));
  }
  EXPECT_EQ(recorder.total_recorded(), 10u);
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first; sequence numbers survive the wraparound.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, static_cast<std::uint64_t>(7 + i));
    EXPECT_EQ(events[i].units, 6 + i);
  }
  const std::string rendered = recorder.Render();
  EXPECT_NE(rendered.find("last 4 of 10 operations"), std::string::npos)
      << rendered;
}

TEST(FlightRecorderTest, CapacityClampsToAtLeastOne) {
  FlightRecorder recorder(/*capacity=*/0);
  EXPECT_EQ(recorder.capacity(), 1);
  recorder.Record(FlightEvent{});
  recorder.Record(FlightEvent{});
  ASSERT_EQ(recorder.Snapshot().size(), 1u);
  EXPECT_EQ(recorder.Snapshot()[0].seq, 2u);
}

TEST(FlightRecorderTest, RenderShowsLayerAttributionAndFailures) {
  sut::StackProbe probe;
  probe.BeginOperation();
  probe.BeginUnit();
  probe.Reach(sut::SutLayer::kP4rtServer);
  probe.Reach(sut::SutLayer::kOrchestration);
  probe.Reach(sut::SutLayer::kSyncdSai);
  probe.BeginUnit();
  probe.Reach(sut::SutLayer::kP4rtServer);
  probe.NoteUnitFailure();

  FlightRecorder recorder(/*capacity=*/8);
  recorder.RecordOperation(FlightEvent::Kind::kWrite, probe, /*rejected=*/1,
                           "fuzz batch 3");
  const std::string rendered = recorder.Render();
  EXPECT_NE(rendered.find("write"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("2 updates"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("(1 rejected)"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("reached=syncd-sai"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("failed@=p4rt-server"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("fuzz batch 3"), std::string::npos) << rendered;
}

// ---------------------------------------------------------------------------
// Layer probe
// ---------------------------------------------------------------------------

TEST(LayerProbeTest, TracksDeepestAndFailedDeepestPerOperation) {
  sut::StackProbe probe;
  probe.BeginOperation();
  probe.BeginUnit();
  probe.Reach(sut::SutLayer::kP4rtServer);
  probe.Reach(sut::SutLayer::kAsic);
  EXPECT_EQ(probe.op_deepest(), sut::SutLayer::kAsic);
  EXPECT_EQ(probe.op_failed_deepest(), sut::SutLayer::kNone);

  probe.BeginUnit();
  probe.Reach(sut::SutLayer::kP4rtServer);
  probe.Reach(sut::SutLayer::kOrchestration);
  probe.NoteUnitFailure();
  EXPECT_EQ(probe.op_failed_deepest(), sut::SutLayer::kOrchestration);
  EXPECT_EQ(probe.units(), 2);
  EXPECT_EQ(probe.failed_units(), 1);

  // A new operation resets per-operation state.
  probe.BeginOperation();
  EXPECT_EQ(probe.op_deepest(), sut::SutLayer::kNone);
  EXPECT_EQ(probe.units(), 0);

  const std::string summary = probe.OpLayersSummary();
  EXPECT_EQ(summary, "");  // nothing reached yet this operation
}

// ---------------------------------------------------------------------------
// Chrome trace_event export
// ---------------------------------------------------------------------------

TraceSpan MakeSpan(std::string name, std::string category, int shard,
                   std::uint64_t seq, std::uint64_t parent_seq,
                   std::uint64_t start_ns, std::uint64_t duration_ns) {
  TraceSpan span;
  span.name = std::move(name);
  span.category = std::move(category);
  span.shard = shard;
  span.seq = seq;
  span.parent_seq = parent_seq;
  span.start_ns = start_ns;
  span.duration_ns = duration_ns;
  return span;
}

TEST(TraceTest, ChromeJsonGolden) {
  Tracer tracer;
  // Recorded out of order on purpose: export must sort by (shard, seq).
  TraceSpan child = MakeSpan("switch-\"write\"", "control-plane", 0, 2, 1,
                             2500, 1000500);
  child.args.emplace_back("layers", "p4rt-server:1");
  tracer.Record(std::move(child));
  tracer.Record(MakeSpan("campaign", "campaign", -1, 1, 0, 1000, 2500500));
  tracer.Record(MakeSpan("fuzz-batch 0", "control-plane", 0, 1, 0, 2000,
                         2000000));

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"coordinator\"}},"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"campaign\"}},"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":1,"
      "\"args\":{\"name\":\"shard 0\"}},"
      "{\"name\":\"campaign\",\"cat\":\"campaign\",\"ph\":\"X\","
      "\"ts\":1.000,\"dur\":2500.500,\"pid\":0,\"tid\":0,"
      "\"args\":{\"seq\":\"1\"}},"
      "{\"name\":\"fuzz-batch 0\",\"cat\":\"control-plane\",\"ph\":\"X\","
      "\"ts\":2.000,\"dur\":2000.000,\"pid\":0,\"tid\":1,"
      "\"args\":{\"seq\":\"1\"}},"
      "{\"name\":\"switch-\\\"write\\\"\",\"cat\":\"control-plane\","
      "\"ph\":\"X\",\"ts\":2.500,\"dur\":1000.500,\"pid\":0,\"tid\":1,"
      "\"args\":{\"seq\":\"2\",\"layers\":\"p4rt-server:1\"}}"
      "]}";
  EXPECT_EQ(tracer.ToChromeJson(), expected);

  // And the golden string itself must be valid JSON.
  const std::optional<JsonValue> parsed = JsonParser::Parse(expected);
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array.size(), 6u);
  EXPECT_EQ(events->array[5].Find("name")->string, "switch-\"write\"");
}

TEST(TraceTest, JsonEscapeHandlesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab\rret"),
            "line\\nbreak\\ttab\\rret");
  EXPECT_EQ(JsonEscape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  // Round-trip through the parser.
  const std::string nasty = "he said \"hi\\there\"\n\x02";
  const std::optional<JsonValue> parsed =
      JsonParser::Parse("\"" + JsonEscape(nasty) + "\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->string, nasty);
}

TEST(TraceTest, ScopedSpanOnNullTrackIsANoOp) {
  ScopedSpan span(nullptr, "ignored", "ignored");
  EXPECT_FALSE(span.enabled());
  span.AddArg("key", "value");  // must not crash
}

TEST(TraceTest, NestedScopedSpansRecordParentage) {
  Tracer tracer;
  TraceTrack track(&tracer, /*shard=*/3);
  {
    ScopedSpan outer(&track, "outer", "test");
    {
      ScopedSpan inner(&track, "inner", "test");
    }
    ScopedSpan sibling(&track, "sibling", "test");
  }
  const std::vector<TraceSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 3u);
  // Sorted by seq: outer=1, inner=2, sibling=3.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent_seq, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent_seq, 1u);
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[2].parent_seq, 1u);
  for (const TraceSpan& span : spans) EXPECT_EQ(span.shard, 3);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

// Parses "name value" and "name{le=\"...\"} value" lines; returns false on
// any malformed line. Histogram buckets are collected per metric name in
// file order.
struct PrometheusText {
  std::map<std::string, double> scalars;  // plain name -> value
  std::map<std::string, std::vector<std::pair<std::string, double>>> buckets;

  static std::optional<PrometheusText> Parse(const std::string& text) {
    PrometheusText result;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] == '#') continue;
      const std::size_t space = line.rfind(' ');
      if (space == std::string::npos) return std::nullopt;
      const std::string name = line.substr(0, space);
      double value = 0;
      try {
        std::size_t consumed = 0;
        value = std::stod(line.substr(space + 1), &consumed);
        if (consumed != line.size() - space - 1) return std::nullopt;
      } catch (...) {
        return std::nullopt;
      }
      const std::size_t brace = name.find('{');
      if (brace == std::string::npos) {
        result.scalars[name] = value;
        continue;
      }
      // Only the `le` label is emitted; anything else is malformed.
      const std::string base = name.substr(0, brace);
      const std::string label = name.substr(brace);
      if (label.substr(0, 5) != "{le=\"" || label.back() != '}') {
        return std::nullopt;
      }
      const std::string le = label.substr(5, label.size() - 7);
      result.buckets[base].emplace_back(le, value);
    }
    return result;
  }
};

TEST(MetricsTest, PrometheusExportParsesAndHistogramsAreCumulative) {
  Metrics metrics;
  metrics.Add(metrics.updates_sent, 480);
  metrics.Add(metrics.packets_tested, 120);
  metrics.Add(metrics.incidents_raised, 3);
  for (int i = 0; i < 50; ++i) metrics.switch_write_hist.Record(1500);
  for (int i = 0; i < 5; ++i) metrics.switch_write_hist.Record(90000);
  metrics.oracle_hist.Record(40000);

  const MetricsSnapshot snapshot = metrics.Snapshot(/*wall_seconds=*/1.5);
  const std::optional<PrometheusText> parsed =
      PrometheusText::Parse(snapshot.ToPrometheus());
  ASSERT_TRUE(parsed.has_value());

  EXPECT_EQ(parsed->scalars.at("switchv_updates_sent_total"), 480);
  EXPECT_EQ(parsed->scalars.at("switchv_packets_tested_total"), 120);
  EXPECT_NEAR(parsed->scalars.at("switchv_updates_per_second"), 320, 1e-6);

  for (const char* phase :
       {"switchv_phase_switch_write_seconds",
        "switchv_phase_oracle_seconds",
        "switchv_phase_reference_sim_seconds",
        "switchv_phase_packet_gen_seconds"}) {
    SCOPED_TRACE(phase);
    const auto it = parsed->buckets.find(std::string(phase) + "_bucket");
    ASSERT_NE(it, parsed->buckets.end());
    ASSERT_EQ(it->second.size(), static_cast<std::size_t>(kHistogramBuckets));
    double previous = 0;
    for (const auto& [le, cumulative] : it->second) {
      EXPECT_GE(cumulative, previous);  // cumulative buckets never decrease
      previous = cumulative;
    }
    EXPECT_EQ(it->second.back().first, "+Inf");
    // The +Inf bucket equals _count — the Prometheus histogram invariant.
    EXPECT_EQ(it->second.back().second,
              parsed->scalars.at(std::string(phase) + "_count"));
  }
  EXPECT_EQ(parsed->scalars.at("switchv_phase_switch_write_seconds_count"),
            55);
  EXPECT_EQ(parsed->scalars.at("switchv_phase_oracle_seconds_count"), 1);
}

TEST(MetricsTest, JsonExportRoundTripsThroughParser) {
  Metrics metrics;
  metrics.Add(metrics.updates_sent, 2000);
  metrics.Add(metrics.requests_sent, 40);
  for (int i = 0; i < 100; ++i) metrics.switch_write_hist.Record(3000);

  const MetricsSnapshot snapshot = metrics.Snapshot(/*wall_seconds=*/2.0);
  const std::optional<JsonValue> parsed =
      JsonParser::Parse(snapshot.ToJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Find("updates_sent")->number, 2000);
  EXPECT_EQ(parsed->Find("updates_per_second")->number, 1000);
  const JsonValue* phases = parsed->Find("phases");
  ASSERT_NE(phases, nullptr);
  const JsonValue* write_phase = phases->Find("switch_write");
  ASSERT_NE(write_phase, nullptr);
  EXPECT_EQ(write_phase->Find("count")->number, 100);
  EXPECT_GT(write_phase->Find("p50_ns")->number, 2000);
  EXPECT_LE(write_phase->Find("p99_ns")->number, 4096);
}

// ---------------------------------------------------------------------------
// Incident fingerprints must ignore the new observability fields
// ---------------------------------------------------------------------------

TEST(IncidentTest, FingerprintIgnoresLayerAndReplayTrace) {
  Incident a{Detector::kFuzzer, "entry 17 missing", "details", 42};
  Incident b = a;
  b.layer = sut::SutLayer::kAsic;
  b.replay_trace = "flight recorder (last 3 of 41 operations): ...";
  b.details = "other details";
  b.shard = 5;
  EXPECT_EQ(IncidentFingerprint(a), IncidentFingerprint(b));
}

// ---------------------------------------------------------------------------
// Campaign integration: trace determinism, attribution, exports
// ---------------------------------------------------------------------------

class TraceCampaignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto model = models::BuildSaiProgram(models::Role::kMiddleblock);
    ASSERT_TRUE(model.ok()) << model.status();
    model_ = new p4ir::Program(*std::move(model));
    const p4ir::P4Info info = p4ir::P4Info::FromProgram(*model_);
    auto entries =
        models::GenerateEntries(info, models::Role::kMiddleblock,
                                ExperimentOptions::SmallWorkload(), /*seed=*/2);
    ASSERT_TRUE(entries.ok()) << entries.status();
    entries_ = new std::vector<p4rt::TableEntry>(*std::move(entries));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete entries_;
    model_ = nullptr;
    entries_ = nullptr;
  }

  static CampaignOptions FastCampaign() {
    CampaignOptions options;
    options.seed = 7;
    options.control_plane_shards = 4;
    options.dataplane_shards = 2;
    options.control_plane.num_requests = 12;
    options.control_plane.updates_per_request = 40;
    options.dataplane.packet_out_ports = 2;
    return options;
  }

  static CampaignReport Run(const sut::FaultRegistry* faults,
                            const CampaignOptions& options) {
    return RunValidationCampaign(faults, *model_, models::SaiParserSpec(),
                                 *entries_, options);
  }

  static p4ir::Program* model_;
  static std::vector<p4rt::TableEntry>* entries_;
};

p4ir::Program* TraceCampaignTest::model_ = nullptr;
std::vector<p4rt::TableEntry>* TraceCampaignTest::entries_ = nullptr;

// Span content — (shard, seq, parent_seq, name, category, args) — must be a
// pure function of the options: running the same control-plane campaign
// with 1 worker and 4 yields identical span sets, timestamps aside. The
// campaign-level track is compared without args (its `parallelism` arg is
// the one legitimate difference).
TEST_F(TraceCampaignTest, SpanContentIsIdenticalAcrossParallelism) {
  using SpanKey =
      std::tuple<int, std::uint64_t, std::uint64_t, std::string, std::string,
                 std::vector<std::pair<std::string, std::string>>>;
  const auto skeleton = [](const Tracer& tracer) {
    std::vector<SpanKey> keys;
    for (const TraceSpan& span : tracer.Spans()) {
      keys.emplace_back(span.shard, span.seq, span.parent_seq, span.name,
                        span.category,
                        span.shard < 0
                            ? std::vector<std::pair<std::string, std::string>>{}
                            : span.args);
    }
    return keys;
  };

  CampaignOptions options = FastCampaign();
  options.run_dataplane = false;  // keep the comparison Z3-free

  Tracer sequential_tracer;
  options.tracer = &sequential_tracer;
  options.parallelism = 1;
  Run(nullptr, options);

  Tracer parallel_tracer;
  options.tracer = &parallel_tracer;
  options.parallelism = 4;
  Run(nullptr, options);

  const std::vector<SpanKey> sequential = skeleton(sequential_tracer);
  const std::vector<SpanKey> parallel = skeleton(parallel_tracer);
  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, parallel);

  // Spot-check the expected shape: one campaign root, four shard roots,
  // nested fuzz batches with switch-write/oracle children.
  int shard_roots = 0, batches = 0;
  for (const TraceSpan& span : sequential_tracer.Spans()) {
    if (span.name == "control-plane shard") ++shard_roots;
    if (span.name.rfind("fuzz-batch", 0) == 0) {
      ++batches;
      EXPECT_EQ(span.parent_seq, 1u);  // nested under the shard root
    }
  }
  EXPECT_EQ(shard_roots, 4);
  EXPECT_EQ(batches, 12);  // num_requests split across shards
}

// The acceptance bar from the paper's Table 1: a fault injected at the
// syncd/SAI layer must be *attributed* to that layer in the incident.
TEST_F(TraceCampaignTest, SaiLayerFaultIsAttributedToSyncdSai) {
  sut::FaultRegistry faults;
  faults.Activate(sut::Fault::kSubmitToIngressNotL3Enabled);
  symbolic::PacketCache cache;

  CampaignOptions options = FastCampaign();
  options.run_control_plane = false;
  options.dataplane_shards = 1;
  options.dataplane.cache = &cache;
  const CampaignReport report = Run(&faults, options);

  ASSERT_TRUE(report.bug_detected());
  bool found = false;
  for (const Incident& incident : report.Incidents()) {
    if (incident.summary.find("submit-to-ingress packet was dropped") ==
        std::string::npos) {
      continue;
    }
    found = true;
    EXPECT_EQ(incident.layer, sut::SutLayer::kSyncdSai)
        << "attributed to " << sut::SutLayerName(incident.layer);
    EXPECT_FALSE(incident.replay_trace.empty());
    EXPECT_NE(incident.replay_trace.find("submit-to-ingress"),
              std::string::npos)
        << incident.replay_trace;
    EXPECT_NE(incident.replay_trace.find("reached=syncd-sai"),
              std::string::npos)
        << incident.replay_trace;
  }
  EXPECT_TRUE(found);
}

// Control-plane faults surface at the P4Runtime front-end; and *every*
// incident a campaign raises must carry a non-empty replay trace.
TEST_F(TraceCampaignTest, EveryIncidentCarriesReplayTraceAndAttribution) {
  sut::FaultRegistry faults;
  faults.Activate(sut::Fault::kDeleteNonExistingFailsBatch);

  CampaignOptions options = FastCampaign();
  options.run_dataplane = false;
  options.flight_recorder_capacity = 8;
  const CampaignReport report = Run(&faults, options);

  ASSERT_TRUE(report.bug_detected());
  for (const Incident& incident : report.Incidents()) {
    SCOPED_TRACE(incident.summary);
    EXPECT_FALSE(incident.replay_trace.empty());
    EXPECT_NE(incident.replay_trace.find("flight recorder"),
              std::string::npos);
    EXPECT_EQ(incident.layer, sut::SutLayer::kP4rtServer)
        << "attributed to " << sut::SutLayerName(incident.layer);
  }
}

// A traced campaign fills the per-phase latency histograms.
TEST_F(TraceCampaignTest, CampaignPopulatesPhaseHistograms) {
  CampaignOptions options = FastCampaign();
  options.run_dataplane = false;
  const CampaignReport report = Run(nullptr, options);
  EXPECT_GT(report.metrics.switch_write_hist.count, 0u);
  EXPECT_GT(report.metrics.oracle_hist.count, 0u);
  // Fuzz-batch writes are histogram-timed; the per-shard replay-state seed
  // write is not, so the histogram undershoots the raw write counter.
  EXPECT_EQ(report.metrics.switch_write_hist.count,
            static_cast<std::uint64_t>(FastCampaign().control_plane.num_requests));
  EXPECT_LT(report.metrics.switch_write_hist.count,
            report.metrics.switch_writes);
}

// End-to-end smoke: a 1-shard nightly with tracing on produces a parseable
// Chrome trace and parseable Prometheus text.
TEST_F(TraceCampaignTest, NightlyRunExportsParseableTraceAndPrometheus) {
  Tracer tracer;
  NightlyOptions options;
  options.control_plane.num_requests = 6;
  options.control_plane.updates_per_request = 30;
  options.run_dataplane = false;
  options.tracer = &tracer;

  sut::FaultRegistry faults;
  faults.Activate(sut::Fault::kDeleteNonExistingFailsBatch);
  const NightlyReport report = RunNightlyValidation(
      &faults, *model_, models::SaiParserSpec(), *entries_, options);

  ASSERT_TRUE(report.bug_detected());
  for (const Incident& incident : report.incidents) {
    EXPECT_FALSE(incident.replay_trace.empty());
    EXPECT_NE(incident.layer, sut::SutLayer::kNone);
  }

  // Chrome trace: parses, and contains the campaign + shard tracks.
  const std::optional<JsonValue> trace =
      JsonParser::Parse(tracer.ToChromeJson());
  ASSERT_TRUE(trace.has_value());
  const JsonValue* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_campaign = false, saw_batch = false;
  for (const JsonValue& event : events->array) {
    const JsonValue* name = event.Find("name");
    ASSERT_NE(name, nullptr);
    if (name->string == "campaign") saw_campaign = true;
    if (name->string.rfind("fuzz-batch", 0) == 0) saw_batch = true;
  }
  EXPECT_TRUE(saw_campaign);
  EXPECT_TRUE(saw_batch);

  // Prometheus text: parses, with consistent totals.
  const std::optional<PrometheusText> prom =
      PrometheusText::Parse(report.metrics.ToPrometheus());
  ASSERT_TRUE(prom.has_value());
  EXPECT_EQ(prom->scalars.at("switchv_updates_sent_total"),
            static_cast<double>(report.metrics.updates_sent));
  EXPECT_GT(prom->scalars.at("switchv_incidents_raised_total"), 0);
}

}  // namespace
}  // namespace switchv
