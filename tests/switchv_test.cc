#include <gtest/gtest.h>

#include <algorithm>

#include "switchv/experiment.h"

namespace switchv {
namespace {

// gtest parameter names must be alphanumeric.
std::string TestName(std::string name) {
  std::replace(name.begin(), name.end(), '-', '_');
  return name.substr(0, 48);
}

// Shared fast configuration: a small forwarding state and a short fuzzing
// campaign. The full-scale runs live in bench/.
ExperimentOptions FastOptions() {
  ExperimentOptions options;
  options.nightly.control_plane.num_requests = 12;
  options.nightly.control_plane.updates_per_request = 40;
  options.nightly.dataplane.packet_out_ports = 2;
  return options;
}

// ---------------------------------------------------------------------------
// Soundness: SwitchV reports nothing on a healthy switch.
// ---------------------------------------------------------------------------

class HealthyNightlyTest : public ::testing::TestWithParam<models::Role> {};

TEST_P(HealthyNightlyTest, NoIncidentsOnHealthySwitch) {
  const models::Role role = GetParam();
  auto model = models::BuildSaiProgram(role);
  ASSERT_TRUE(model.ok()) << model.status();
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(*model);
  models::WorkloadSpec workload = ExperimentOptions::SmallWorkload();
  if (role == models::Role::kWan) {
    workload.num_decap = 3;
    workload.num_tunnels = 6;
  }
  auto entries = models::GenerateEntries(info, role, workload, /*seed=*/2);
  ASSERT_TRUE(entries.ok());

  const NightlyReport report = RunNightlyValidation(
      nullptr, *model, models::SaiParserSpec(), *entries,
      FastOptions().nightly);
  for (const Incident& incident : report.incidents) {
    ADD_FAILURE() << DetectorName(incident.detector) << ": "
                  << incident.summary << " [" << incident.details << "]";
  }
  EXPECT_GT(report.fuzzed_updates, 100);
  EXPECT_GT(report.packets_tested, 20);
}

INSTANTIATE_TEST_SUITE_P(Roles, HealthyNightlyTest,
                         ::testing::Values(models::Role::kMiddleblock,
                                           models::Role::kWan),
                         [](const auto& param) {
                           return std::string(models::RoleName(param.param));
                         });

// ---------------------------------------------------------------------------
// Detection: every injected catalog bug is found. The full 40-bug sweep is
// bench/table1_bugs_by_component; here we check a representative slice
// covering every component bucket and both detectors.
// ---------------------------------------------------------------------------

class BugDetectionTest : public ::testing::TestWithParam<sut::Fault> {};

TEST_P(BugDetectionTest, NightlyRunDetectsInjectedBug) {
  const sut::BugInfo* bug = sut::FindBug(GetParam());
  ASSERT_NE(bug, nullptr);
  auto result = RunNightlyForBug(*bug, FastOptions());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->detected)
      << bug->name << " was not detected by the nightly run";
  if (result->detected) {
    SCOPED_TRACE(result->first_incident);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Slice, BugDetectionTest,
    ::testing::Values(
        // One per component bucket, mixing expected detectors.
        sut::Fault::kDeleteNonExistingFailsBatch,   // P4RT server / fuzzer
        sut::Fault::kReadTernaryUnsupported,        // P4RT server / reads
        sut::Fault::kGnmiPortSpeedBreaksPunt,       // gNMI / symbolic
        sut::Fault::kWcmpUpdateRemovesMembers,      // OA / symbolic
        sut::Fault::kDscpRemarkedToZero,            // SyncD / symbolic
        sut::Fault::kLldpDaemonPunts,               // Switch Linux
        sut::Fault::kAsicCapacityBelowGuarantee,    // Hardware / fuzzer
        sut::Fault::kP4InfoZeroByteIds,             // Toolchain
        sut::Fault::kModelMissingTtlTrap,           // Input P4 program
        sut::Fault::kEncapReversedDstIp,            // Cerberus software
        sut::Fault::kBmv2RejectsValidOptional),     // Simulator
    [](const auto& param) {
      return TestName(sut::FindBug(param.param)->name);
    });

// ---------------------------------------------------------------------------
// Trivial suite (§6.2).
// ---------------------------------------------------------------------------

TEST(TrivialSuiteTest, HealthySwitchPassesAllSixTests) {
  auto model = models::BuildSaiProgram(models::Role::kMiddleblock);
  ASSERT_TRUE(model.ok());
  sut::SwitchUnderTest sut(nullptr, models::DefaultCloneSessions(),
                           model->cpu_port);
  const TrivialSuiteReport report =
      RunTrivialSuite(sut, *model, models::SaiParserSpec());
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(report.passed[static_cast<std::size_t>(i)])
        << "trivial test " << i + 1 << " failed: "
        << report.failure_details[static_cast<std::size_t>(i)];
  }
  EXPECT_FALSE(report.FirstFailing().has_value());
}

TEST(TrivialSuiteTest, WanRolePassesToo) {
  auto model = models::BuildSaiProgram(models::Role::kWan);
  ASSERT_TRUE(model.ok());
  sut::SwitchUnderTest sut(nullptr, models::DefaultCloneSessions(),
                           model->cpu_port);
  const TrivialSuiteReport report =
      RunTrivialSuite(sut, *model, models::SaiParserSpec());
  EXPECT_TRUE(report.all_passed())
      << (report.FirstFailing().has_value()
              ? std::string(sut::TrivialTestName(*report.FirstFailing()))
              : "");
}

struct TrivialCase {
  sut::Fault fault;
  sut::TrivialTest expected_first_failure;
};

class TrivialSuiteFaultTest : public ::testing::TestWithParam<TrivialCase> {};

TEST_P(TrivialSuiteFaultTest, FirstFailingTestMatches) {
  const TrivialCase& test_case = GetParam();
  const sut::BugInfo* bug = sut::FindBug(test_case.fault);
  ASSERT_NE(bug, nullptr);
  auto first = RunTrivialSuiteForBug(*bug);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(*first, test_case.expected_first_failure)
      << bug->name << ": first failing test is "
      << sut::TrivialTestName(*first);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TrivialSuiteFaultTest,
    ::testing::Values(
        // Config-push bugs die on test 1.
        TrivialCase{sut::Fault::kP4InfoZeroByteIds,
                    sut::TrivialTest::kSetP4Info},
        // ACL-entry rejection dies on test 2.
        TrivialCase{sut::Fault::kAclTableNameWrongCase,
                    sut::TrivialTest::kTableEntryProgramming},
        TrivialCase{sut::Fault::kAclKeySpaceCharRejected,
                    sut::TrivialTest::kTableEntryProgramming},
        // Swallowed config push: writes fail afterwards (test 2).
        TrivialCase{sut::Fault::kP4InfoPushFailureSwallowed,
                    sut::TrivialTest::kTableEntryProgramming},
        // Stripped ternary reads die on test 3.
        TrivialCase{sut::Fault::kReadTernaryUnsupported,
                    sut::TrivialTest::kReadAllTables},
        // Broken punt paths die on test 4.
        TrivialCase{sut::Fault::kPortSyncDaemonRestart,
                    sut::TrivialTest::kPacketIn},
        TrivialCase{sut::Fault::kGnmiPortSpeedBreaksPunt,
                    sut::TrivialTest::kPacketIn},
        // Wrong-ICMP-field model bug: the model disagrees with the switch
        // on the punt packet (paper Appendix A attribution).
        TrivialCase{sut::Fault::kModelWrongIcmpField,
                    sut::TrivialTest::kPacketIn},
        // Deep bugs are invisible to the trivial suite.
        TrivialCase{sut::Fault::kModifyKeepsOldActionParams,
                    sut::TrivialTest::kNone},
        TrivialCase{sut::Fault::kAclResourceLeak, sut::TrivialTest::kNone},
        TrivialCase{sut::Fault::kEncapReversedDstIp,
                    sut::TrivialTest::kNone}),
    [](const auto& param) {
      return TestName(sut::FindBug(param.param.fault)->name);
    });

}  // namespace
}  // namespace switchv
