// Regenerates paper Table 3 (bottom): p4-fuzzer throughput on the two
// production P4 programs.
//
//   P4 Prog.  Fuzzed Entries  Entries/s
//   Inst1     50384           97
//   Inst2     48521           96
//
// Method: the paper's configuration — write requests of ~50 table-entry
// updates each — runs against the switch under test, with the oracle
// reading the switch state back after every batch. Throughput counts
// end-to-end updates per second including switch round-trips and oracle
// judgment. Shape to check: the rate is essentially program-independent
// (Inst1 ≈ Inst2), since fuzzing cost is dominated by request handling,
// not by program size.
//
// Default: 100 requests per program (5k updates). SWITCHV_FULL_TABLE3=1
// runs the paper's 1000 requests (~50k updates).
//
//   $ ./table3_fuzzer_perf

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "models/entry_gen.h"
#include "switchv/control_plane.h"

using namespace switchv;

namespace {

struct RowResult {
  std::string name;
  int updates = 0;
  double seconds = 0;
  int incidents = 0;
};

StatusOr<RowResult> RunInstantiation(const std::string& name,
                                     models::Role role, int requests) {
  RowResult row;
  row.name = name;
  SWITCHV_ASSIGN_OR_RETURN(p4ir::Program model,
                           models::BuildSaiProgram(role));
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(model);
  sut::SwitchUnderTest sut(nullptr, models::DefaultCloneSessions(),
                           model.cpu_port);
  SWITCHV_RETURN_IF_ERROR(sut.SetForwardingPipelineConfig(info));

  ControlPlaneOptions options;
  options.num_requests = requests;
  options.updates_per_request = 50;
  options.seed = 7;
  const auto start = std::chrono::steady_clock::now();
  const ControlPlaneResult result =
      RunControlPlaneValidation(sut, info, options);
  row.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  row.updates = result.updates_sent;
  row.incidents = static_cast<int>(result.incidents.size());
  return row;
}

}  // namespace

int main() {
  const bool full = std::getenv("SWITCHV_FULL_TABLE3") != nullptr;
  const int requests = full ? 1000 : 100;
  std::cout << "Table 3 (bottom) reproduction: p4-fuzzer throughput\n"
            << requests << " write requests x ~50 updates per program"
            << (full ? "" : " (set SWITCHV_FULL_TABLE3=1 for the paper's "
                            "1000 requests)")
            << "\n\n";
  std::cout << std::left << std::setw(10) << "P4 Prog." << std::right
            << std::setw(16) << "Fuzzed Entries" << std::setw(12)
            << "Entries/s" << std::setw(12) << "Incidents" << "\n";
  double rate[2] = {0, 0};
  const struct {
    const char* name;
    models::Role role;
  } programs[] = {
      {"Inst1", models::Role::kMiddleblock},
      {"Inst2", models::Role::kWan},
  };
  for (int i = 0; i < 2; ++i) {
    auto row = RunInstantiation(programs[i].name, programs[i].role, requests);
    if (!row.ok()) {
      std::cerr << row.status() << "\n";
      return 1;
    }
    rate[i] = row->updates / row->seconds;
    std::cout << std::left << std::setw(10) << row->name << std::right
              << std::setw(16) << row->updates << std::setw(12) << std::fixed
              << std::setprecision(0) << rate[i] << std::setw(12)
              << row->incidents << "\n";
    if (row->incidents != 0) {
      std::cerr << "unexpected incidents on the healthy switch\n";
      return 1;
    }
  }
  std::cout << "\npaper: Inst1 50384 entries at 97/s; Inst2 48521 at 96/s\n"
            << "shape check: Inst1/Inst2 rate ratio = " << std::fixed
            << std::setprecision(2) << rate[0] / rate[1]
            << " (paper: 1.01 — program-independent throughput)\n";
  return 0;
}
