// Regenerates paper Table 3 (bottom): p4-fuzzer throughput on the two
// production P4 programs.
//
//   P4 Prog.  Fuzzed Entries  Entries/s
//   Inst1     50384           97
//   Inst2     48521           96
//
// Method: the paper's configuration — write requests of ~50 table-entry
// updates each — runs against the switch under test, with the oracle
// reading the switch state back after every batch. Throughput counts
// end-to-end updates per second including switch round-trips and oracle
// judgment. Shape to check: the rate is essentially program-independent
// (Inst1 ≈ Inst2), since fuzzing cost is dominated by request handling,
// not by program size.
//
// Default: 100 requests per program (5k updates). SWITCHV_FULL_TABLE3=1
// runs the paper's 1000 requests (~50k updates).
//
// Besides the human-readable table, the run drops machine-readable
// telemetry for per-PR bench trajectories and the Perfetto recipe in
// EXPERIMENTS.md:
//   BENCH_fuzzer.json         updates/s, packets/s, phase p50/p90/p99
//   BENCH_fuzzer_trace.json   Chrome trace of the campaign-scaling run
//   BENCH_fuzzer.prom         Prometheus text exposition of the same run
//   BENCH_fuzzer_events.jsonl event journal of the same run (one JSON
//                             object per line: campaign/shard lifecycle
//                             with monotone coordinator timestamps; the
//                             campaign is coverage-guided, so completion
//                             events carry cumulative edge counts — see
//                             the EXPERIMENTS.md coverage-growth recipe)
//
//   $ ./table3_fuzzer_perf

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <thread>

#include "fuzzer/judgment_cache.h"
#include "models/entry_gen.h"
#include "switchv/experiment.h"
#include "switchv/telemetry.h"

using namespace switchv;

namespace {

struct RowResult {
  std::string name;
  int updates = 0;
  double seconds = 0;
  int incidents = 0;
  MetricsSnapshot metrics;
};

StatusOr<RowResult> RunInstantiation(const std::string& name,
                                     models::Role role, int requests) {
  RowResult row;
  row.name = name;
  SWITCHV_ASSIGN_OR_RETURN(p4ir::Program model,
                           models::BuildSaiProgram(role));
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(model);
  sut::SwitchUnderTest sut(nullptr, models::DefaultCloneSessions(),
                           model.cpu_port);
  SWITCHV_RETURN_IF_ERROR(sut.SetForwardingPipelineConfig(info));

  Metrics metrics;
  fuzzer::JudgmentCache judgment_cache;
  ControlPlaneOptions options;
  options.num_requests = requests;
  options.updates_per_request = 50;
  options.seed = 7;
  options.metrics = &metrics;
  // Production shards share a process-wide judgment cache (engine.cc);
  // give the bench row the same configuration so its oracle cost is the
  // deployed one, and so BENCH_fuzzer.json records the hit/miss traffic.
  options.judgment_cache = &judgment_cache;
  const auto start = std::chrono::steady_clock::now();
  const ControlPlaneResult result =
      RunControlPlaneValidation(sut, info, options);
  row.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  row.updates = result.updates_sent;
  row.incidents = static_cast<int>(result.incidents.size());
  row.metrics = metrics.Snapshot(row.seconds);
  return row;
}

// Campaign-engine scaling: the same sharded campaign with 1 worker and 4.
// The shard decomposition is fixed and the coverage scheduler draws from a
// per-shard stream, so the deduped incident-fingerprint set must match
// exactly; only wall clock may differ. The run is coverage-guided so the
// dropped event journal carries the coverage-growth curve (cumulative edge
// counts on shard-completed events, seeds-exchanged at merge — the
// EXPERIMENTS.md plotting recipe reads exactly these). The parallel run is
// traced; returns its metrics snapshot for BENCH_fuzzer.json.
StatusOr<MetricsSnapshot> RunCampaignScaling() {
  SWITCHV_ASSIGN_OR_RETURN(p4ir::Program model,
                           models::BuildSaiProgram(models::Role::kMiddleblock));
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(model);
  SWITCHV_ASSIGN_OR_RETURN(
      std::vector<p4rt::TableEntry> entries,
      models::GenerateEntries(info, models::Role::kMiddleblock,
                              ExperimentOptions::SmallWorkload(), /*seed=*/2));

  symbolic::PacketCache cache;
  CampaignOptions options;
  options.seed = 7;
  options.control_plane_shards = 4;
  options.dataplane_shards = 2;
  options.control_plane.num_requests = 40;
  options.control_plane.updates_per_request = 50;
  options.dataplane.cache = &cache;
  options.guidance = fuzzer::Guidance::kCoverage;

  // Warm the packet cache so both measured runs see identical (cache-hit)
  // generation cost and the comparison isolates shard execution.
  (void)symbolic::GeneratePackets(model, models::SaiParserSpec(), entries,
                                  options.dataplane.coverage, &cache);

  std::cout << "\nCampaign engine: " << options.control_plane_shards
            << " control-plane shards + " << options.dataplane_shards
            << " dataplane shards, parallelism 1 vs 4\n";
  options.parallelism = 1;
  const CampaignReport sequential = RunValidationCampaign(
      nullptr, model, models::SaiParserSpec(), entries, options);
  Tracer tracer;
  CampaignTelemetry telemetry;
  options.parallelism = 4;
  options.tracer = &tracer;
  options.telemetry = &telemetry;
  const CampaignReport parallel = RunValidationCampaign(
      nullptr, model, models::SaiParserSpec(), entries, options);
  options.tracer = nullptr;
  options.telemetry = nullptr;

  if (sequential.FingerprintSet() != parallel.FingerprintSet()) {
    return InternalError(
        "parallelism changed the campaign's deduped fingerprint set");
  }
  std::ofstream("BENCH_fuzzer_trace.json") << tracer.ToChromeJson();
  std::ofstream("BENCH_fuzzer.prom") << parallel.metrics.ToPrometheus();
  std::ofstream("BENCH_fuzzer_events.jsonl") << telemetry.journal().ToJsonl();
  std::cout << "  parallelism 1: wall " << std::fixed << std::setprecision(2)
            << sequential.metrics.wall_seconds << "s, "
            << std::setprecision(0) << sequential.metrics.updates_per_second()
            << " updates/s\n";
  std::cout << "  parallelism 4: wall " << std::setprecision(2)
            << parallel.metrics.wall_seconds << "s, " << std::setprecision(0)
            << parallel.metrics.updates_per_second() << " updates/s\n";
  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "  speedup " << std::setprecision(2)
            << sequential.metrics.wall_seconds / parallel.metrics.wall_seconds
            << "x on " << cores << " hardware threads"
            << (cores < 2 ? " (single core: expect <= 1x; the invariant "
                            "under test is the identical fingerprint set)"
                          : "")
            << ", identical fingerprint set ("
            << parallel.FingerprintSet().size() << " incident classes)\n\n";
  std::cout << sequential.metrics.ToString() << "\n";
  std::cout << "wrote BENCH_fuzzer_trace.json (load in ui.perfetto.dev), "
               "BENCH_fuzzer.prom and BENCH_fuzzer_events.jsonl\n";
  // The exported campaign object (which the throughput gates read) comes
  // from the sequential run: under parallelism 4 on few cores the shard
  // threads time-slice, so each shard's phase timers accumulate the other
  // shards' timeslices — wall-clock interleaving, not phase cost. The
  // parallel run still pins the fingerprint-set identity and feeds the
  // trace/telemetry exports above.
  return sequential.metrics;
}

// Pulls `updates_sent` and the oracle phase's `total_ns` out of one
// instantiation object ("inst1"/"inst2") of a BENCH_fuzzer.json payload and
// returns the oracle-phase throughput in updates per oracle-second.
// Returns false if the payload lacks either field.
bool OracleRate(const std::string& json, const std::string& inst,
                double* updates_per_oracle_second) {
  const std::size_t inst_pos = json.find("\"" + inst + "\":");
  if (inst_pos == std::string::npos) return false;
  const std::string updates_key = "\"updates_sent\":";
  const std::string oracle_key = "\"oracle\":{\"total_ns\":";
  const std::size_t u = json.find(updates_key, inst_pos);
  const std::size_t o = json.find(oracle_key, inst_pos);
  if (u == std::string::npos || o == std::string::npos) return false;
  const double updates = std::atof(json.c_str() + u + updates_key.size());
  const double oracle_ns = std::atof(json.c_str() + o + oracle_key.size());
  if (updates <= 0 || oracle_ns <= 0) return false;
  *updates_per_oracle_second = updates / (oracle_ns / 1e9);
  return true;
}

// Perf gate for the incremental oracle + judgment cache: with
// SWITCHV_BENCH_BASELINE pointing at a pre-change BENCH_fuzzer.json, the
// oracle phase of both instantiation rows must sustain >= 10x the
// baseline's updates per oracle-second. The oracle phase is gated (rather
// than end-to-end updates/s) because the other phases — switch write/read
// round-trips and the reference simulation — are outside the oracle's
// control and would dilute a regression in it.
int CheckOracleSpeedupGate(const std::string& current_json) {
  const char* baseline_path = std::getenv("SWITCHV_BENCH_BASELINE");
  if (baseline_path == nullptr) {
    std::cout << "oracle speedup gate: skipped (set SWITCHV_BENCH_BASELINE "
                 "to a pre-change BENCH_fuzzer.json to enforce >= 10x)\n";
    return 0;
  }
  std::ifstream in(baseline_path);
  if (!in) {
    std::cerr << "oracle speedup gate: FAIL — cannot read baseline "
              << baseline_path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string baseline_json = buffer.str();
  constexpr double kRequiredSpeedup = 10.0;
  int failures = 0;
  for (const char* inst : {"inst1", "inst2"}) {
    double base_rate = 0, current_rate = 0;
    if (!OracleRate(baseline_json, inst, &base_rate)) {
      std::cerr << "oracle speedup gate: FAIL — baseline " << baseline_path
                << " has no oracle rate for " << inst << "\n";
      ++failures;
      continue;
    }
    if (!OracleRate(current_json, inst, &current_rate)) {
      std::cerr << "oracle speedup gate: FAIL — current run has no oracle "
                   "rate for "
                << inst << "\n";
      ++failures;
      continue;
    }
    const double speedup = current_rate / base_rate;
    const bool ok = speedup >= kRequiredSpeedup;
    std::cout << "oracle speedup gate: " << (ok ? "PASS" : "FAIL") << " — "
              << inst << " " << std::fixed << std::setprecision(0)
              << base_rate << " -> " << current_rate
              << " updates per oracle-second (" << std::setprecision(1)
              << speedup << "x, need >= " << std::setprecision(0)
              << kRequiredSpeedup << "x)\n";
    if (!ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

// Pulls `packets_tested` and the reference phase's `total_ns` out of the
// "campaign" object of a BENCH_fuzzer.json payload and returns the
// reference-phase throughput in packets per reference-second. Returns
// false if the payload lacks either field. Both the pre-batch baseline and
// current payloads carry these fields, so one formula serves both sides of
// the gate.
bool ReferenceRate(const std::string& json,
                   double* packets_per_reference_second) {
  const std::size_t campaign_pos = json.find("\"campaign\":");
  if (campaign_pos == std::string::npos) return false;
  const std::string packets_key = "\"packets_tested\":";
  const std::string reference_key = "\"reference_sim\":{\"total_ns\":";
  const std::size_t p = json.find(packets_key, campaign_pos);
  const std::size_t r = json.find(reference_key, campaign_pos);
  if (p == std::string::npos || r == std::string::npos) return false;
  const double packets = std::atof(json.c_str() + p + packets_key.size());
  const double reference_ns =
      std::atof(json.c_str() + r + reference_key.size());
  if (packets <= 0 || reference_ns <= 0) return false;
  *packets_per_reference_second = packets / (reference_ns / 1e9);
  return true;
}

// Perf gate for the bit-parallel 64-lane reference simulation: with
// SWITCHV_BENCH_BASELINE_PRE_BATCH pointing at a pre-batch
// BENCH_fuzzer.json (bench/baselines/BENCH_fuzzer_pre_batch.json in the
// repo), the campaign's reference phase must sustain >= 8x the baseline's
// packets per reference-second. The reference phase is gated (rather than
// end-to-end packets/s) because packet generation, switch injection, and
// the control plane are outside the batch lane's control and would dilute
// a regression in it.
int CheckBatchSpeedupGate(const std::string& current_json) {
  const char* baseline_path = std::getenv("SWITCHV_BENCH_BASELINE_PRE_BATCH");
  if (baseline_path == nullptr) {
    std::cout << "batch speedup gate: skipped (set "
                 "SWITCHV_BENCH_BASELINE_PRE_BATCH to a pre-batch "
                 "BENCH_fuzzer.json to enforce >= 8x)\n";
    return 0;
  }
  std::ifstream in(baseline_path);
  if (!in) {
    std::cerr << "batch speedup gate: FAIL — cannot read baseline "
              << baseline_path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  constexpr double kRequiredSpeedup = 8.0;
  double base_rate = 0, current_rate = 0;
  if (!ReferenceRate(buffer.str(), &base_rate)) {
    std::cerr << "batch speedup gate: FAIL — baseline " << baseline_path
              << " has no campaign reference rate\n";
    return 1;
  }
  if (!ReferenceRate(current_json, &current_rate)) {
    std::cerr << "batch speedup gate: FAIL — current run has no campaign "
                 "reference rate\n";
    return 1;
  }
  const double speedup = current_rate / base_rate;
  const bool ok = speedup >= kRequiredSpeedup;
  std::cout << "batch speedup gate: " << (ok ? "PASS" : "FAIL") << " — "
            << std::fixed << std::setprecision(0) << base_rate << " -> "
            << current_rate << " packets per reference-second ("
            << std::setprecision(1) << speedup << "x, need >= "
            << std::setprecision(0) << kRequiredSpeedup << "x)\n";
  return ok ? 0 : 1;
}

}  // namespace

int main() {
  const bool full = std::getenv("SWITCHV_FULL_TABLE3") != nullptr;
  const int requests = full ? 1000 : 100;
  std::cout << "Table 3 (bottom) reproduction: p4-fuzzer throughput\n"
            << requests << " write requests x ~50 updates per program"
            << (full ? "" : " (set SWITCHV_FULL_TABLE3=1 for the paper's "
                            "1000 requests)")
            << "\n\n";
  std::cout << std::left << std::setw(10) << "P4 Prog." << std::right
            << std::setw(16) << "Fuzzed Entries" << std::setw(12)
            << "Entries/s" << std::setw(12) << "Incidents" << "\n";
  double rate[2] = {0, 0};
  std::string program_json[2];
  const struct {
    const char* name;
    models::Role role;
  } programs[] = {
      {"Inst1", models::Role::kMiddleblock},
      {"Inst2", models::Role::kWan},
  };
  for (int i = 0; i < 2; ++i) {
    auto row = RunInstantiation(programs[i].name, programs[i].role, requests);
    if (!row.ok()) {
      std::cerr << row.status() << "\n";
      return 1;
    }
    rate[i] = row->updates / row->seconds;
    program_json[i] = row->metrics.ToJson();
    std::cout << std::left << std::setw(10) << row->name << std::right
              << std::setw(16) << row->updates << std::setw(12) << std::fixed
              << std::setprecision(0) << rate[i] << std::setw(12)
              << row->incidents << "\n";
    if (row->incidents != 0) {
      std::cerr << "unexpected incidents on the healthy switch\n";
      return 1;
    }
  }
  std::cout << "\npaper: Inst1 50384 entries at 97/s; Inst2 48521 at 96/s\n"
            << "shape check: Inst1/Inst2 rate ratio = " << std::fixed
            << std::setprecision(2) << rate[0] / rate[1]
            << " (paper: 1.01 — program-independent throughput)\n";
  const auto campaign = RunCampaignScaling();
  if (!campaign.ok()) {
    std::cerr << campaign.status() << "\n";
    return 1;
  }
  const std::string bench_json = "{\"inst1\":" + program_json[0] +
                                 ",\"inst2\":" + program_json[1] +
                                 ",\"campaign\":" + campaign->ToJson() + "}";
  std::ofstream("BENCH_fuzzer.json") << bench_json;
  std::cout << "wrote BENCH_fuzzer.json\n";
  const int oracle_gate = CheckOracleSpeedupGate(bench_json);
  const int batch_gate = CheckBatchSpeedupGate(bench_json);
  return oracle_gate != 0 ? oracle_gate : batch_gate;
}
