// Ablation: BDD-guided constraint handling in p4-fuzzer (the paper's §7
// "ongoing work", implemented here) versus the paper's §4.1 baseline that
// ignores constraints during generation.
//
// Measures, over constrained tables:
//   * the fraction of intended-valid requests that are actually
//     constraint-compliant (the baseline "frequently generates invalid
//     requests for tables with constraints"),
//   * generation throughput,
//   * the share of interesting near-miss violations among mutated requests.
//
//   $ ./ablation_bdd_fuzzer

#include <chrono>
#include <iomanip>
#include <iostream>

#include "fuzzer/generator.h"
#include "models/entry_gen.h"
#include "p4runtime/validator.h"

using namespace switchv;

namespace {

struct Result {
  int constrained_valid_attempts = 0;
  int constraint_compliant = 0;
  int violations_from_mutation = 0;
  double updates_per_second = 0;
};

StatusOr<Result> RunMode(bool use_bdd, const p4ir::P4Info& info,
                         const std::vector<p4rt::TableEntry>& base) {
  Result result;
  fuzzer::FuzzerOptions options;
  options.use_bdd_for_constraints = use_bdd;
  fuzzer::RequestGenerator generator(info, options, /*seed=*/13);
  fuzzer::SwitchStateView state(info);
  state.Reset(base);

  const int kBatches = 200;
  const int kBatchSize = 50;
  const auto start = std::chrono::steady_clock::now();
  int updates = 0;
  for (int i = 0; i < kBatches; ++i) {
    const auto batch = generator.GenerateBatch(state, kBatchSize);
    updates += static_cast<int>(batch.size());
    for (const fuzzer::AnnotatedUpdate& update : batch) {
      if (update.update.type != p4rt::UpdateType::kInsert) continue;
      const p4ir::TableInfo* table =
          info.FindTable(update.update.entry.table_id);
      if (table == nullptr || table->entry_restriction.empty()) continue;
      if (!update.mutation.has_value()) {
        ++result.constrained_valid_attempts;
        auto compliant =
            p4rt::IsConstraintCompliant(info, update.update.entry);
        if (compliant.ok() && *compliant) ++result.constraint_compliant;
      } else if (*update.mutation ==
                 fuzzer::Mutation::kConstraintViolation) {
        ++result.violations_from_mutation;
      }
    }
  }
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  result.updates_per_second = updates / seconds;
  return result;
}

}  // namespace

int main() {
  std::cout << "Ablation: BDD-guided constraint handling in p4-fuzzer\n\n";
  auto model = models::BuildSaiProgram(models::Role::kMiddleblock);
  if (!model.ok()) {
    std::cerr << model.status() << "\n";
    return 1;
  }
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(*model);
  auto base = models::GenerateEntries(info, models::Role::kMiddleblock,
                                      models::WorkloadSpec::Inst1(), 1);
  if (!base.ok()) {
    std::cerr << base.status() << "\n";
    return 1;
  }

  std::cout << std::left << std::setw(30) << "Mode" << std::right
            << std::setw(22) << "Compliant valid reqs" << std::setw(18)
            << "Near-miss invalid" << std::setw(14) << "Updates/s" << "\n";
  for (const bool use_bdd : {false, true}) {
    auto result = RunMode(use_bdd, info, *base);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    const int pct =
        result->constrained_valid_attempts > 0
            ? 100 * result->constraint_compliant /
                  result->constrained_valid_attempts
            : 0;
    std::cout << std::left << std::setw(30)
              << (use_bdd ? "BDD-guided (§7 extension)"
                          : "naive (paper §4.1 baseline)")
              << std::right << std::setw(18)
              << (std::to_string(result->constraint_compliant) + "/" +
                  std::to_string(result->constrained_valid_attempts))
              << " (" << std::setw(3) << pct << "%)" << std::setw(12)
              << result->violations_from_mutation << std::setw(14)
              << std::fixed << std::setprecision(0)
              << result->updates_per_second << "\n";
  }
  std::cout << "\nexpected shape: the baseline's intended-valid requests for "
               "constrained tables\nare often non-compliant; the BDD mode "
               "reaches 100% compliance and adds\nnear-miss violations, at "
               "comparable throughput.\n";
  return 0;
}
