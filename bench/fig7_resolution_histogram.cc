// Regenerates paper Figure 7: "Number of days required to resolve bugs in
// PINS by SwitchV component".
//
// Method: the full catalog sweep runs (as for Table 1) to determine which
// bugs SwitchV actually detects and by which component; detected PINS bugs
// are then joined with the catalog's days-to-resolution metadata (our
// substitute for the paper's two-year issue-tracker history; see
// DESIGN.md) and bucketed into the figure's bins. Shape to check: the
// majority of bugs resolve within 14 days, roughly a third within 5, a
// long tail beyond 150 days, and some unresolved.
//
//   $ ./fig7_resolution_histogram

#include <iomanip>
#include <iostream>

#include "switchv/experiment.h"

using namespace switchv;

int main() {
  std::cout << "Figure 7 reproduction: days to resolution of detected PINS "
               "bugs\n(running the detection sweep first)\n";
  ExperimentOptions options;
  options.nightly.control_plane.num_requests = 15;
  auto results = RunFullSweep(options);
  if (!results.ok()) {
    std::cerr << results.status() << "\n";
    return 1;
  }

  struct Bucket {
    int lo;
    int hi;  // exclusive; -1 = open-ended
    const char* label;
  };
  static constexpr Bucket kBuckets[] = {
      {0, 3, "0-3"},     {3, 6, "3-6"},     {6, 10, "6-10"},
      {10, 15, "10-15"}, {15, 20, "15-20"}, {20, 25, "20-25"},
      {25, 30, "25-30"}, {30, 60, "30-60"}, {60, 90, "60-90"},
      {90, 120, "90-120"}, {120, 150, "120-150"}, {150, -1, ">= 150"},
  };
  int total[12] = {};
  int symbolic[12] = {};
  int fuzzer[12] = {};
  int unresolved = 0;
  int pins_detected = 0;
  int within_5 = 0;
  int within_14 = 0;
  for (const BugRunResult& result : *results) {
    if (!result.detected || result.bug->stack != sut::Stack::kPins) continue;
    ++pins_detected;
    const int days = result.bug->days_to_resolution;
    if (days < 0) {
      ++unresolved;
      continue;
    }
    if (days <= 5) ++within_5;
    if (days <= 14) ++within_14;
    for (int b = 0; b < 12; ++b) {
      if (days >= kBuckets[b].lo &&
          (kBuckets[b].hi < 0 || days < kBuckets[b].hi)) {
        ++total[b];
        if (*result.detector == Detector::kSymbolic) {
          ++symbolic[b];
        } else {
          ++fuzzer[b];
        }
        break;
      }
    }
  }

  std::cout << "\n" << std::left << std::setw(10) << "Days" << std::right
            << std::setw(7) << "Total" << std::setw(10) << "Symbolic"
            << std::setw(8) << "Fuzzer" << "  histogram\n";
  for (int b = 0; b < 12; ++b) {
    std::cout << std::left << std::setw(10) << kBuckets[b].label
              << std::right << std::setw(7) << total[b] << std::setw(10)
              << symbolic[b] << std::setw(8) << fuzzer[b] << "  "
              << std::string(static_cast<std::size_t>(total[b]) * 4, '#')
              << "\n";
  }
  std::cout << "\nunresolved bugs: " << unresolved
            << " (paper: 9 of 122, at catalog scale ~1-2)\n"
            << "resolved within 14 days: " << within_14 << "/"
            << pins_detected
            << " (paper: the majority of bugs were fixed within 14 days)\n"
            << "resolved within 5 days: " << within_5 << "/" << pins_detected
            << " (paper: 33% fixed within 5 days)\n";
  return 0;
}
