// Regenerates paper Table 2: "Which bugs could be found using the trivial
// test suite".
//
// Method: the six-test trivial suite of §6.2 runs, in sequence, against
// each injected catalog bug; a bug is attributed to the first test that
// fails (bugs caught by an earlier test are excluded from later rows,
// exactly as in the paper). The paper's headline shape: about half of the
// PINS bugs are catchable by the trivial suite, while most Cerberus bugs
// (pre-filtered by the vendor's own testing) are not.
//
//   $ ./table2_trivial_suite

#include <iomanip>
#include <iostream>
#include <map>

#include "switchv/experiment.h"

using namespace switchv;

int main() {
  std::cout << "Table 2 reproduction: bugs found by the trivial test suite\n";
  std::map<sut::TrivialTest, int> pins;
  std::map<sut::TrivialTest, int> cerberus;
  int pins_total = 0;
  int cerberus_total = 0;
  for (const sut::BugInfo& bug : sut::BugCatalog()) {
    auto first = RunTrivialSuiteForBug(bug);
    if (!first.ok()) {
      std::cerr << bug.name << ": " << first.status() << "\n";
      return 1;
    }
    if (bug.stack == sut::Stack::kPins) {
      ++pins[*first];
      ++pins_total;
    } else {
      ++cerberus[*first];
      ++cerberus_total;
    }
  }

  static constexpr sut::TrivialTest kRows[] = {
      sut::TrivialTest::kSetP4Info,
      sut::TrivialTest::kTableEntryProgramming,
      sut::TrivialTest::kReadAllTables,
      sut::TrivialTest::kPacketIn,
      sut::TrivialTest::kPacketOut,
      sut::TrivialTest::kPacketForwarding,
      sut::TrivialTest::kNone,
  };
  std::cout << "\n" << std::left << std::setw(34) << "Test" << std::right
            << std::setw(16) << "PINS" << std::setw(16) << "Cerberus"
            << "\n";
  auto cell = [](int count, int total) {
    const int pct = total > 0 ? (100 * count + total / 2) / total : 0;
    return std::to_string(count) + " (" + std::to_string(pct) + "%)";
  };
  for (sut::TrivialTest test : kRows) {
    std::cout << std::left << std::setw(34) << sut::TrivialTestName(test)
              << std::right << std::setw(16) << cell(pins[test], pins_total)
              << std::setw(16) << cell(cerberus[test], cerberus_total)
              << "\n";
  }
  const int pins_found = pins_total - pins[sut::TrivialTest::kNone];
  const int cerberus_found =
      cerberus_total - cerberus[sut::TrivialTest::kNone];
  std::cout << "\nfound by the trivial suite: PINS "
            << cell(pins_found, pins_total) << " (paper: 51%), Cerberus "
            << cell(cerberus_found, cerberus_total) << " (paper: 22%)\n";
  return 0;
}
