// Regenerates paper Table 3 (top): p4-symbolic performance on the two
// production P4 programs.
//
//   P4 Prog.  Entries  Generation (w/c)  Testing
//   Inst1     798      413s (14s)        58s
//   Inst2     1314     1099s (6s)        64s
//
// Method: generate entry-coverage test packets for the full production-like
// forwarding state, cold and then warm (cache hit), then run every packet
// through the switch under test and the reference simulator and compare
// ("Testing"). Absolute seconds are machine-dependent; the shape to check:
// Inst2 generation is substantially slower than Inst1 (larger state, wider
// keys), the cache reduces generation by 1-2 orders of magnitude, and
// testing time is roughly flat across the two programs.
//
// By default the workload is scaled to 1/4 of the paper's entry counts to
// keep the bench suite under an hour; set SWITCHV_FULL_TABLE3=1 for the
// full 798/1314-entry runs (several hundred seconds of Z3 per program,
// matching the paper's magnitudes).
//
//   $ ./table3_symbolic_perf
//   $ SWITCHV_FULL_TABLE3=1 ./table3_symbolic_perf

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "bmv2/interpreter.h"
#include "models/entry_gen.h"
#include "sut/switch_stack.h"
#include "symbolic/packet_gen.h"

using namespace switchv;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

models::WorkloadSpec Scale(models::WorkloadSpec spec, int divisor) {
  if (divisor <= 1) return spec;
  auto scale = [divisor](int& value) {
    value = std::max(1, value / divisor);
  };
  scale(spec.num_vrfs);
  scale(spec.num_l3_admit);
  scale(spec.num_pre_ingress);
  scale(spec.num_ipv4_routes);
  scale(spec.num_ipv6_routes);
  scale(spec.num_wcmp_groups);
  scale(spec.num_nexthops);
  scale(spec.num_neighbors);
  scale(spec.num_rifs);
  scale(spec.num_acl_ingress);
  scale(spec.num_mirror_sessions);
  scale(spec.num_egress_rifs);
  if (spec.num_decap > 0) scale(spec.num_decap);
  if (spec.num_tunnels > 0) scale(spec.num_tunnels);
  return spec;
}

struct RowResult {
  std::string name;
  int entries = 0;
  double generation_cold = 0;
  double generation_warm = 0;
  double testing = 0;
  int packets = 0;
};

StatusOr<RowResult> RunInstantiation(const std::string& name,
                                     models::Role role,
                                     const models::WorkloadSpec& spec) {
  RowResult row;
  row.name = name;
  SWITCHV_ASSIGN_OR_RETURN(p4ir::Program model,
                           models::BuildSaiProgram(role));
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(model);
  SWITCHV_ASSIGN_OR_RETURN(std::vector<p4rt::TableEntry> entries,
                           models::GenerateEntries(info, role, spec, 1));
  row.entries = static_cast<int>(entries.size());

  symbolic::PacketCache cache;
  symbolic::GenerationStats stats;
  auto start = std::chrono::steady_clock::now();
  SWITCHV_ASSIGN_OR_RETURN(
      std::vector<symbolic::TestPacket> packets,
      symbolic::GeneratePackets(model, models::SaiParserSpec(), entries,
                                symbolic::CoverageMode::kEntryCoverage,
                                &cache, &stats));
  row.generation_cold = Seconds(start);
  row.packets = static_cast<int>(packets.size());

  start = std::chrono::steady_clock::now();
  SWITCHV_ASSIGN_OR_RETURN(
      std::vector<symbolic::TestPacket> cached,
      symbolic::GeneratePackets(model, models::SaiParserSpec(), entries,
                                symbolic::CoverageMode::kEntryCoverage,
                                &cache, &stats));
  row.generation_warm = Seconds(start);

  // Testing: packets through the switch under test and the reference
  // simulator, with behaviour comparison.
  sut::SwitchUnderTest sut(nullptr, models::DefaultCloneSessions(),
                           model.cpu_port);
  SWITCHV_RETURN_IF_ERROR(sut.SetForwardingPipelineConfig(info));
  p4rt::WriteRequest request;
  for (const p4rt::TableEntry& entry : entries) {
    request.updates.push_back(p4rt::Update{p4rt::UpdateType::kInsert, entry});
  }
  (void)sut.Write(request);
  bmv2::Interpreter reference(model, models::SaiParserSpec(),
                              models::DefaultCloneSessions());
  SWITCHV_RETURN_IF_ERROR(reference.InstallEntries(entries));
  start = std::chrono::steady_clock::now();
  int divergences = 0;
  for (const symbolic::TestPacket& packet : packets) {
    const packet::ForwardingOutcome observed =
        sut.InjectPacket(packet.bytes, packet.ingress_port);
    auto behaviors =
        reference.EnumerateBehaviors(packet.bytes, packet.ingress_port);
    bool admissible = false;
    if (behaviors.ok()) {
      for (const packet::ForwardingOutcome& b : *behaviors) {
        if (b == observed) admissible = true;
      }
    }
    if (!admissible) ++divergences;
  }
  row.testing = Seconds(start);
  if (divergences != 0) {
    return InternalError("unexpected divergences on the healthy switch");
  }
  return row;
}

}  // namespace

int main() {
  const bool full = std::getenv("SWITCHV_FULL_TABLE3") != nullptr;
  const int divisor = full ? 1 : 4;
  std::cout << "Table 3 (top) reproduction: p4-symbolic performance\n"
            << (full ? "full paper-scale workloads (798/1314 entries)"
                     : "workloads scaled to 1/4 of the paper's entry "
                       "counts (set SWITCHV_FULL_TABLE3=1 for full scale)")
            << "\n\n";

  const struct {
    const char* name;
    models::Role role;
    models::WorkloadSpec spec;
  } programs[] = {
      {"Inst1", models::Role::kMiddleblock,
       Scale(models::WorkloadSpec::Inst1(), divisor)},
      {"Inst2", models::Role::kWan,
       Scale(models::WorkloadSpec::Inst2(), divisor)},
  };

  std::cout << std::left << std::setw(10) << "P4 Prog." << std::right
            << std::setw(9) << "Entries" << std::setw(22)
            << "Generation (w/c)" << std::setw(10) << "Testing"
            << std::setw(10) << "Packets" << "\n";
  double gen[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    auto row = RunInstantiation(programs[i].name, programs[i].role,
                                programs[i].spec);
    if (!row.ok()) {
      std::cerr << programs[i].name << ": " << row.status() << "\n";
      return 1;
    }
    gen[i] = row->generation_cold;
    std::ostringstream generation;
    generation << std::fixed << std::setprecision(1) << row->generation_cold
               << "s (" << std::setprecision(2) << row->generation_warm
               << "s)";
    std::cout << std::left << std::setw(10) << row->name << std::right
              << std::setw(9) << row->entries << std::setw(22)
              << generation.str() << std::setw(9) << std::fixed
              << std::setprecision(1) << row->testing << "s"
              << std::setw(10) << row->packets << "\n";
  }
  std::cout << "\npaper (full scale): Inst1 798 entries, 413s (14s), 58s; "
               "Inst2 1314 entries, 1099s (6s), 64s\n"
            << "shape check: Inst2 generation / Inst1 generation = "
            << std::fixed << std::setprecision(2) << (gen[1] / gen[0])
            << " (paper: 2.66)\n";
  return 0;
}
