// Regenerates paper Table 1: "Bugs found by SwitchV by component".
//
// Method: every catalog bug is injected into the switch stack, a nightly
// SwitchV validation runs against it, and the detecting component
// (p4-fuzzer vs p4-symbolic) is recorded. The paper's absolute counts (122
// PINS + 32 Cerberus bugs over two years) are not reproducible from a
// catalog of ~40 injectable defects; what must hold is the *shape*: bugs in
// every layer of both stacks, a plurality in the new P4Runtime server,
// p4-symbolic detecting the majority, and the §6.1 aggregate statistics.
//
//   $ ./table1_bugs_by_component

#include <iomanip>
#include <iostream>
#include <map>

#include "switchv/experiment.h"

using namespace switchv;

namespace {

struct Row {
  int total = 0;
  int fuzzer = 0;
  int symbolic = 0;
};

void PrintTable(const std::string& title,
                const std::vector<sut::Component>& order,
                const std::map<sut::Component, Row>& rows) {
  std::cout << "\n" << title << "\n";
  std::cout << std::left << std::setw(26) << "Component" << std::right
            << std::setw(6) << "Bugs" << std::setw(12) << "p4-fuzzer"
            << std::setw(13) << "p4-symbolic" << "\n";
  Row sum;
  for (sut::Component component : order) {
    auto it = rows.find(component);
    if (it == rows.end()) continue;
    const Row& row = it->second;
    std::cout << std::left << std::setw(26) << ComponentName(component)
              << std::right << std::setw(6) << row.total << std::setw(12)
              << row.fuzzer << std::setw(13) << row.symbolic << "\n";
    sum.total += row.total;
    sum.fuzzer += row.fuzzer;
    sum.symbolic += row.symbolic;
  }
  std::cout << std::left << std::setw(26) << "Total" << std::right
            << std::setw(6) << sum.total << std::setw(12) << sum.fuzzer
            << std::setw(13) << sum.symbolic << "\n";
}

}  // namespace

int main() {
  std::cout << "Table 1 reproduction: bugs found by SwitchV by component\n"
            << "(each catalog bug injected, one nightly validation each)\n\n"
            << "sweep progress:\n";
  ExperimentOptions options;
  options.nightly.control_plane.num_requests = 15;
  auto results = RunFullSweep(options, &std::cout);
  if (!results.ok()) {
    std::cerr << results.status() << "\n";
    return 1;
  }

  std::map<sut::Component, Row> pins;
  std::map<sut::Component, Row> cerberus;
  int undetected = 0;
  int integration = 0;
  int detected_pins = 0;
  int detected_total = 0;
  for (const BugRunResult& result : *results) {
    if (!result.detected) {
      ++undetected;
      continue;
    }
    ++detected_total;
    auto& table = result.bug->stack == sut::Stack::kPins ? pins : cerberus;
    Row& row = table[result.bug->component];
    ++row.total;
    if (*result.detector == Detector::kFuzzer) {
      ++row.fuzzer;
    } else {
      ++row.symbolic;
    }
    if (result.bug->stack == sut::Stack::kPins) ++detected_pins;
    if (result.bug->integration_bug) ++integration;
  }

  PrintTable("PINS (paper: 122 bugs total; 37 fuzzer / 85 symbolic)",
             {sut::Component::kP4RuntimeServer, sut::Component::kGnmi,
              sut::Component::kOrchestrationAgent,
              sut::Component::kSyncdBinary, sut::Component::kSwitchLinux,
              sut::Component::kHardware, sut::Component::kP4Toolchain,
              sut::Component::kInputP4Program},
             pins);
  PrintTable("Cerberus (paper: 32 bugs total; 18 fuzzer / 14 symbolic)",
             {sut::Component::kSwitchSoftware, sut::Component::kHardware,
              sut::Component::kInputP4Program,
              sut::Component::kBmv2Simulator},
             cerberus);

  std::cout << "\nAggregate statistics (paper §6.1):\n"
            << "  catalog bugs detected: " << detected_total << "/"
            << results->size() << " (undetected: " << undetected << ")\n"
            << "  integration bugs among detected: " << integration << " ("
            << (detected_total > 0 ? 100 * integration / detected_total : 0)
            << "%; paper: 33% of PINS bugs were integration bugs)\n"
            << "  single-component bugs: " << detected_total - integration
            << " ("
            << (detected_total > 0
                    ? 100 * (detected_total - integration) / detected_total
                    : 0)
            << "%; paper: 67%)\n";
  return undetected == 0 ? 0 : 1;
}
