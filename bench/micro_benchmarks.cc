// Microbenchmarks for the per-stage costs behind Table 3: value encoding,
// constraint parsing/evaluation, BDD compilation and sampling, entry
// validation and decoding, both dataplane implementations, LPM lookup,
// fuzz-batch generation, and single-packet SMT solving. After the
// benchmarks, the telemetry_overhead guard runs (and sets the exit code):
// live metric/span streaming must add <2% to a shard's wall time.
//
//   $ ./micro_benchmarks

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <set>

#include "bmv2/batch_interpreter.h"
#include "bmv2/interpreter.h"
#include "fuzzer/generator.h"
#include "fuzzer/oracle.h"
#include "models/entry_gen.h"
#include "models/test_packets.h"
#include "p4constraints/constraint_bdd.h"
#include "p4runtime/decoded_entry.h"
#include "p4runtime/validator.h"
#include "sut/lpm_trie.h"
#include "sut/switch_stack.h"
#include "switchv/engine.h"
#include "switchv/metrics.h"
#include "switchv/recorder.h"
#include "switchv/trace.h"
#include "symbolic/executor.h"

namespace switchv {
namespace {

// Shared fixtures, built once.
struct Env {
  p4ir::Program model;
  p4ir::P4Info info;
  std::vector<p4rt::TableEntry> entries;
  std::string tcp_packet;
  std::string arp_packet;

  static const Env& Get() {
    static const Env* const env = [] {
      auto* e = new Env;
      e->model = std::move(
          models::BuildSaiProgram(models::Role::kMiddleblock).value());
      e->info = p4ir::P4Info::FromProgram(e->model);
      models::WorkloadSpec spec;
      spec.num_ipv4_routes = 200;
      spec.num_ipv6_routes = 60;
      e->entries = std::move(models::GenerateEntries(
                                 e->info, models::Role::kMiddleblock, spec, 1)
                                 .value());
      models::Ipv4PacketSpec packet_spec;
      packet_spec.dst_ip = 0x0A000102;
      e->tcp_packet = models::BuildIpv4Packet(e->model, packet_spec);
      e->arp_packet = models::BuildArpPacket(e->model);
      return e;
    }();
    return *env;
  }
};

void BM_BitStringCanonicalRoundTrip(benchmark::State& state) {
  const BitString value = BitString::FromUint(0x0A00000122334455ull, 64);
  for (auto _ : state) {
    auto bytes = value.ToCanonicalBytes();
    auto parsed = BitString::FromBytes(bytes, 64);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_BitStringCanonicalRoundTrip);

void BM_ConstraintParse(benchmark::State& state) {
  p4constraints::TableSchema schema;
  schema.keys = {{"vrf_id", 12, p4constraints::KeySchema::Kind::kExact},
                 {"ether_type", 16, p4constraints::KeySchema::Kind::kTernary},
                 {"dst_ip", 32, p4constraints::KeySchema::Kind::kTernary}};
  for (auto _ : state) {
    auto parsed = p4constraints::ParseConstraint(
        "vrf_id != 0 && (dst_ip::mask != 0 -> ether_type == 0x0800)",
        schema);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ConstraintParse);

void BM_ConstraintEval(benchmark::State& state) {
  p4constraints::TableSchema schema;
  schema.keys = {{"vrf_id", 12, p4constraints::KeySchema::Kind::kExact}};
  auto parsed = p4constraints::ParseConstraint("vrf_id != 0", schema);
  p4constraints::EntryValuation entry;
  entry.keys["vrf_id"] = {true, 7, 0xFFF, 0};
  for (auto _ : state) {
    auto verdict = p4constraints::EvalConstraint(*parsed, entry);
    benchmark::DoNotOptimize(verdict);
  }
}
BENCHMARK(BM_ConstraintEval);

void BM_BddCompileAclConstraint(benchmark::State& state) {
  const Env& env = Env::Get();
  const p4ir::TableInfo* acl = env.info.FindTableByName("acl_ingress_tbl");
  const auto schema = p4rt::SchemaForTable(*acl);
  for (auto _ : state) {
    auto compiled =
        p4constraints::ConstraintBdd::Compile(acl->entry_restriction, schema);
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_BddCompileAclConstraint);

void BM_BddSampleSatisfying(benchmark::State& state) {
  const Env& env = Env::Get();
  const p4ir::TableInfo* acl = env.info.FindTableByName("acl_ingress_tbl");
  auto compiled = p4constraints::ConstraintBdd::Compile(
      acl->entry_restriction, p4rt::SchemaForTable(*acl));
  Rng rng(1);
  for (auto _ : state) {
    auto sample = compiled->SampleSatisfying(rng);
    benchmark::DoNotOptimize(sample);
  }
}
BENCHMARK(BM_BddSampleSatisfying);

void BM_BddSampleViolatingNodeFlip(benchmark::State& state) {
  const Env& env = Env::Get();
  const p4ir::TableInfo* acl = env.info.FindTableByName("acl_ingress_tbl");
  auto compiled = p4constraints::ConstraintBdd::Compile(
      acl->entry_restriction, p4rt::SchemaForTable(*acl));
  Rng rng(1);
  for (auto _ : state) {
    auto sample = compiled->SampleViolating(rng);
    benchmark::DoNotOptimize(sample);
  }
}
BENCHMARK(BM_BddSampleViolatingNodeFlip);

void BM_ValidateEntry(benchmark::State& state) {
  const Env& env = Env::Get();
  std::size_t i = 0;
  for (auto _ : state) {
    const Status status =
        p4rt::ValidateEntry(env.info, env.entries[i++ % env.entries.size()]);
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_ValidateEntry);

void BM_DecodeEntry(benchmark::State& state) {
  const Env& env = Env::Get();
  std::size_t i = 0;
  for (auto _ : state) {
    auto decoded =
        p4rt::DecodeEntry(env.info, env.entries[i++ % env.entries.size()]);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_DecodeEntry);

void BM_PacketParse(benchmark::State& state) {
  const Env& env = Env::Get();
  for (auto _ : state) {
    auto parsed = packet::Parse(env.model, models::SaiParserSpec(),
                                env.tcp_packet);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_PacketParse);

void BM_Bmv2RunPacket(benchmark::State& state) {
  const Env& env = Env::Get();
  bmv2::Interpreter interpreter(env.model, models::SaiParserSpec(),
                                models::DefaultCloneSessions());
  (void)interpreter.InstallEntries(env.entries);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto outcome = interpreter.Run(env.tcp_packet, 1, seed++);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_Bmv2RunPacket);

// A 64-packet batch through the bit-parallel lane engine (compare the
// per-item time against BM_Bmv2RunPacket for the word-parallel win).
void BM_Bmv2RunBatch64(benchmark::State& state) {
  const Env& env = Env::Get();
  bmv2::Interpreter interpreter(env.model, models::SaiParserSpec(),
                                models::DefaultCloneSessions());
  (void)interpreter.InstallEntries(env.entries);
  bmv2::BatchInterpreter batch(interpreter);
  std::vector<std::string> packets;
  for (int i = 0; i < 64; ++i) {
    models::Ipv4PacketSpec spec;
    spec.dst_ip = 0x0A000000u + static_cast<std::uint32_t>(i * 37);
    spec.src_ip = 0xC0A80100u + static_cast<std::uint32_t>(i);
    packets.push_back(models::BuildIpv4Packet(env.model, spec));
  }
  std::vector<bmv2::BatchInterpreter::LanePacket> lanes;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    lanes.push_back({packets[i], static_cast<std::uint16_t>(1 + i % 4)});
  }
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto outcomes = batch.RunBatch64(lanes, seed++);
    benchmark::DoNotOptimize(outcomes);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Bmv2RunBatch64);

void BM_AsicForwardPacket(benchmark::State& state) {
  const Env& env = Env::Get();
  sut::SwitchUnderTest sut(nullptr, models::DefaultCloneSessions(),
                           env.model.cpu_port);
  (void)!sut.SetForwardingPipelineConfig(env.info).ok();
  p4rt::WriteRequest request;
  for (const p4rt::TableEntry& entry : env.entries) {
    request.updates.push_back(p4rt::Update{p4rt::UpdateType::kInsert, entry});
  }
  (void)sut.Write(request);
  for (auto _ : state) {
    auto outcome = sut.asic().Forward(env.tcp_packet, 1);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_AsicForwardPacket);

void BM_LpmTrieLookup(benchmark::State& state) {
  sut::LpmTrie<int> trie(32);
  Rng rng(3);
  for (int i = 0; i < 4096; ++i) {
    trie.Insert(rng.Bits(32).ToUint64(), 8 + static_cast<int>(rng.Uniform(0, 24)), i);
  }
  std::uint32_t key = 0;
  for (auto _ : state) {
    key = key * 2654435761u + 12345u;
    benchmark::DoNotOptimize(trie.Lookup(key));
  }
}
BENCHMARK(BM_LpmTrieLookup);

void BM_FuzzerGenerateBatch(benchmark::State& state) {
  const Env& env = Env::Get();
  fuzzer::SwitchStateView view(env.info);
  view.Reset(env.entries);
  fuzzer::RequestGenerator generator(env.info, fuzzer::FuzzerOptions{}, 5);
  for (auto _ : state) {
    auto batch = generator.GenerateBatch(view, 50);
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_FuzzerGenerateBatch);

void BM_OracleJudgeBatchUncached(benchmark::State& state) {
  // Replays one recorded 50-update batch (duplicate inserts against a
  // fixed installed state) through an uncached oracle: every update pays
  // the full classification.
  const Env& env = Env::Get();
  fuzzer::Oracle oracle(env.info);
  oracle.SyncState(env.entries);
  std::vector<fuzzer::AnnotatedUpdate> batch;
  p4rt::WriteResponse response;
  for (int i = 0; i < 50; ++i) {
    batch.push_back(fuzzer::AnnotatedUpdate{
        p4rt::Update{p4rt::UpdateType::kInsert,
                     env.entries[i % env.entries.size()]},
        std::nullopt});
    response.statuses.push_back(AlreadyExistsError("duplicate insert"));
  }
  p4rt::ReadResponse read;
  read.entries = env.entries;
  const StatusOr<p4rt::ReadResponse> post_read = read;
  for (auto _ : state) {
    auto findings = oracle.JudgeBatch(batch, response, post_read);
    benchmark::DoNotOptimize(findings);
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_OracleJudgeBatchUncached);

void BM_OracleJudgeBatchWarmCache(benchmark::State& state) {
  // The same recorded batch through an oracle attached to a pre-warmed
  // judgment cache: every update is a hit.
  const Env& env = Env::Get();
  fuzzer::JudgmentCache cache;
  fuzzer::Oracle oracle(env.info, &cache);
  oracle.SyncState(env.entries);
  std::vector<fuzzer::AnnotatedUpdate> batch;
  p4rt::WriteResponse response;
  for (int i = 0; i < 50; ++i) {
    batch.push_back(fuzzer::AnnotatedUpdate{
        p4rt::Update{p4rt::UpdateType::kInsert,
                     env.entries[i % env.entries.size()]},
        std::nullopt});
    response.statuses.push_back(AlreadyExistsError("duplicate insert"));
  }
  p4rt::ReadResponse read;
  read.entries = env.entries;
  const StatusOr<p4rt::ReadResponse> post_read = read;
  (void)oracle.JudgeBatch(batch, response, post_read);  // warm the cache
  for (auto _ : state) {
    auto findings = oracle.JudgeBatch(batch, response, post_read);
    benchmark::DoNotOptimize(findings);
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_OracleJudgeBatchWarmCache);

void BM_WriteBatchEndToEnd(benchmark::State& state) {
  // One fuzz round against the full stack: generate, write, read, judge.
  const Env& env = Env::Get();
  sut::SwitchUnderTest sut(nullptr, models::DefaultCloneSessions(),
                           env.model.cpu_port);
  (void)!sut.SetForwardingPipelineConfig(env.info).ok();
  fuzzer::RequestGenerator generator(env.info, fuzzer::FuzzerOptions{}, 5);
  fuzzer::Oracle oracle(env.info);
  for (auto _ : state) {
    const auto batch = generator.GenerateBatch(oracle.state(), 50);
    p4rt::WriteRequest request;
    for (const auto& annotated : batch) {
      request.updates.push_back(annotated.update);
    }
    const auto response = sut.Write(request);
    const auto read = sut.Read(p4rt::ReadRequest{});
    auto findings = oracle.JudgeBatch(batch, response, read);
    benchmark::DoNotOptimize(findings);
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_WriteBatchEndToEnd)->Unit(benchmark::kMillisecond);

// Observability overhead. The disabled-span benchmark is the guard behind
// the "near-zero cost when tracing is off" claim: a null track must reduce
// a ScopedSpan to a pointer check.
void BM_ScopedSpanDisabled(benchmark::State& state) {
  TraceTrack* track = nullptr;
  for (auto _ : state) {
    ScopedSpan span(track, "disabled", "bench");
    span.AddArg("key", std::uint64_t{1});
    benchmark::DoNotOptimize(span.enabled());
  }
}
BENCHMARK(BM_ScopedSpanDisabled);

void BM_ScopedSpanEnabled(benchmark::State& state) {
  Tracer tracer;
  TraceTrack track(&tracer, 0);
  for (auto _ : state) {
    ScopedSpan span(&track, "enabled", "bench");
    span.AddArg("key", std::uint64_t{1});
    benchmark::DoNotOptimize(span.enabled());
  }
}
BENCHMARK(BM_ScopedSpanEnabled);

void BM_HistogramRecord(benchmark::State& state) {
  LatencyHistogram hist;
  std::uint64_t ns = 1;
  for (auto _ : state) {
    hist.Record(ns);
    ns = ns * 2654435761u % 100000000u;  // spread across buckets
  }
  benchmark::DoNotOptimize(hist.Snapshot());
}
BENCHMARK(BM_HistogramRecord);

void BM_FlightRecorderRecord(benchmark::State& state) {
  sut::StackProbe probe;
  probe.BeginOperation();
  probe.BeginUnit();
  probe.Reach(sut::SutLayer::kAsic);
  FlightRecorder recorder(32);
  for (auto _ : state) {
    recorder.RecordOperation(FlightEvent::Kind::kWrite, probe, 0,
                             "bench batch");
  }
  benchmark::DoNotOptimize(recorder.total_recorded());
}
BENCHMARK(BM_FlightRecorderRecord);

void BM_SymbolicExecutePipeline(benchmark::State& state) {
  const Env& env = Env::Get();
  for (auto _ : state) {
    symbolic::SymbolicExecutor executor(env.model, models::SaiParserSpec());
    const Status status = executor.Execute(env.entries);
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_SymbolicExecutePipeline)->Unit(benchmark::kMillisecond);

void BM_SolveOnePacket(benchmark::State& state) {
  const Env& env = Env::Get();
  symbolic::SymbolicExecutor executor(env.model, models::SaiParserSpec());
  (void)!executor.Execute(env.entries).ok();
  const auto& targets = executor.targets();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& target = targets[i++ % targets.size()];
    auto packet = executor.SolvePacket(target.guard, target.id);
    benchmark::DoNotOptimize(packet);
  }
}
BENCHMARK(BM_SolveOnePacket)->Unit(benchmark::kMillisecond);

// Telemetry-plane overhead guard, run after the benchmarks. A shard
// executed with the live-sampling hook attached (the worker's
// `--telemetry-interval` path: a sampler thread emitting metric deltas and
// span batches while the shard runs) must cost within 2% of the same shard
// with streaming off. Paired alternating trials with best-of-N per arm, so
// one scheduler hiccup cannot fail the guard; a small absolute slack
// absorbs timer jitter. The binary exits nonzero on a miss, which is what
// lets CI treat the <2% claim as a regression gate rather than prose.
int TelemetryOverheadGuard() {
  WireShardSpec spec;
  spec.kind = WireShardSpec::Kind::kControlPlane;
  spec.scenario.entry_seed = 2;
  spec.control_plane.num_requests = 60;
  spec.control_plane.updates_per_request = 50;
  spec.control_plane.seed = 11;

  constexpr int kTrials = 5;
  double best_off = 1e30;
  double best_on = 1e30;
  std::uint64_t samples = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto t0 = std::chrono::steady_clock::now();
    const StatusOr<WireShardResult> off = ExecuteShardSpec(spec);
    const auto t1 = std::chrono::steady_clock::now();
    ShardTelemetryHook hook;
    hook.interval_seconds = 0.01;
    hook.emit = [&samples](const TelemetrySample&) { ++samples; };
    const StatusOr<WireShardResult> on = ExecuteShardSpec(spec, &hook);
    const auto t2 = std::chrono::steady_clock::now();
    if (!off.ok() || !on.ok()) {
      std::cerr << "telemetry_overhead guard: shard failed: "
                << (off.ok() ? on.status() : off.status()) << "\n";
      return 1;
    }
    if (on->fuzzed_updates != off->fuzzed_updates ||
        on->incidents.size() != off->incidents.size()) {
      std::cerr << "telemetry_overhead guard: sampling changed the shard "
                   "result\n";
      return 1;
    }
    best_off = std::min(
        best_off, std::chrono::duration<double>(t1 - t0).count());
    best_on = std::min(
        best_on, std::chrono::duration<double>(t2 - t1).count());
  }
  if (samples < kTrials) {
    // The final flush fires unconditionally, so fewer than one sample per
    // trial means the sampler never ran at all.
    std::cerr << "telemetry_overhead guard: sampler emitted nothing\n";
    return 1;
  }
  const bool ok = best_on <= best_off * 1.02 + 0.002;
  std::printf(
      "telemetry_overhead: streaming off %.1fms, on %.1fms (%+.2f%%, "
      "%llu samples) — %s (budget: +2%% of wall)\n",
      best_off * 1e3, best_on * 1e3, (best_on / best_off - 1.0) * 1e2,
      static_cast<unsigned long long>(samples), ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

// Judgment-cache speedup guard, run after the benchmarks. Replays a
// recorded oracle session — a fixed installed state plus batches of
// duplicate inserts the switch rejects with ALREADY_EXISTS, so the state
// never changes and every batch repeats identical classification work —
// once through an uncached oracle (cold) and once through an oracle
// attached to a pre-warmed shared judgment cache (warm). Warm-cache
// JudgeBatch must be >= 5x faster at p50. Paired alternating trials with
// the median over many replays per arm keep the guard robust on a loaded
// single-core box; the binary exits nonzero on a miss so CI treats the
// cache's speedup claim as a regression gate rather than prose.
int OracleCacheSpeedupGuard() {
  const Env& env = Env::Get();
  // Compact constraint-heavy workload: mostly ACL entries, whose
  // classification (syntax + @entry_restriction evaluation + reference
  // checks) is the oracle's most expensive path, over a small installed
  // state so the post-read digest pass (paid identically by both arms)
  // stays negligible.
  models::WorkloadSpec spec;
  spec.num_vrfs = 2;
  spec.num_l3_admit = 1;
  spec.num_pre_ingress = 2;
  spec.num_ipv4_routes = 4;
  spec.num_ipv6_routes = 4;
  spec.num_wcmp_groups = 2;
  spec.num_nexthops = 4;
  spec.num_neighbors = 2;
  spec.num_rifs = 2;
  spec.num_acl_ingress = 50;
  spec.num_mirror_sessions = 1;
  spec.num_egress_rifs = 1;
  auto installed_or = models::GenerateEntries(
      env.info, models::Role::kMiddleblock, spec, /*seed=*/5);
  if (!installed_or.ok()) {
    std::cerr << "oracle_cache guard: workload generation failed: "
              << installed_or.status() << "\n";
    return 1;
  }
  const std::vector<p4rt::TableEntry>& installed = *installed_or;

  // The recorded batch: up to 50 of the costliest-to-classify entries
  // (@entry_restriction ACLs, 128-bit IPv6 LPMs, WCMP one-shot action
  // sets) re-inserted verbatim; the oracle must demand ALREADY_EXISTS and
  // the response agrees, so no findings arise and no state is applied.
  const std::set<std::uint32_t> expensive_tables = [&env] {
    std::set<std::uint32_t> ids;
    for (const char* name :
         {"acl_ingress_tbl", "ipv6_tbl", "wcmp_group_tbl"}) {
      const p4ir::TableInfo* table = env.info.FindTableByName(name);
      if (table != nullptr) ids.insert(table->id);
    }
    return ids;
  }();
  std::vector<fuzzer::AnnotatedUpdate> batch;
  p4rt::WriteResponse response;
  for (const p4rt::TableEntry& entry : installed) {
    if (!expensive_tables.contains(entry.table_id)) continue;
    if (batch.size() == 50) break;
    batch.push_back(fuzzer::AnnotatedUpdate{
        p4rt::Update{p4rt::UpdateType::kInsert, entry}, std::nullopt});
    response.statuses.push_back(AlreadyExistsError("duplicate insert"));
  }
  p4rt::ReadResponse read;
  read.entries = installed;
  const StatusOr<p4rt::ReadResponse> post_read = read;

  fuzzer::JudgmentCache cache;
  {
    // Warm the shared cache once; the measured warm oracles then see only
    // hits (the replayed state digests are deterministic).
    fuzzer::Oracle warmup(env.info, &cache);
    warmup.SyncState(installed);
    if (!warmup.JudgeBatch(batch, response, post_read).empty()) {
      std::cerr << "oracle_cache guard: recorded session unexpectedly "
                   "produced findings\n";
      return 1;
    }
    if (warmup.cache_stats().misses == 0) {
      std::cerr << "oracle_cache guard: warm-up produced no cache misses\n";
      return 1;
    }
  }

  constexpr int kTrials = 7;
  constexpr int kRepsPerTrial = 30;
  std::vector<double> cold_seconds, warm_seconds;
  for (int trial = 0; trial < kTrials; ++trial) {
    fuzzer::Oracle cold(env.info);
    cold.SyncState(installed);
    for (int rep = 0; rep < kRepsPerTrial; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto findings = cold.JudgeBatch(batch, response, post_read);
      cold_seconds.push_back(std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count());
      if (!findings.empty()) {
        std::cerr << "oracle_cache guard: cold replay produced findings\n";
        return 1;
      }
    }
    fuzzer::Oracle warm(env.info, &cache);
    warm.SyncState(installed);
    for (int rep = 0; rep < kRepsPerTrial; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto findings = warm.JudgeBatch(batch, response, post_read);
      warm_seconds.push_back(std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count());
      if (!findings.empty()) {
        std::cerr << "oracle_cache guard: warm replay produced findings "
                     "(cached and uncached verdicts diverged)\n";
        return 1;
      }
    }
    if (warm.cache_stats().misses != 0 || warm.cache_stats().hits == 0) {
      std::cerr << "oracle_cache guard: warm replay was not fully cached ("
                << warm.cache_stats().hits << " hits, "
                << warm.cache_stats().misses << " misses)\n";
      return 1;
    }
  }
  const auto p50 = [](std::vector<double>& samples) {
    std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                     samples.end());
    return samples[samples.size() / 2];
  };
  const double cold_p50 = p50(cold_seconds);
  const double warm_p50 = p50(warm_seconds);
  constexpr double kRequiredSpeedup = 5.0;
  const bool ok = cold_p50 >= kRequiredSpeedup * warm_p50;
  std::printf(
      "oracle_cache: JudgeBatch p50 cold %.1fus, warm %.1fus (%.1fx) — %s "
      "(gate: warm >= %.0fx faster)\n",
      cold_p50 * 1e6, warm_p50 * 1e6, cold_p50 / warm_p50,
      ok ? "PASS" : "FAIL", kRequiredSpeedup);
  return ok ? 0 : 1;
}

// Batch-lane speedup guard, run after the benchmarks. One RunBatch64 over
// a 64-packet batch (routed and unrouted flows across the installed
// routes) must be >= 4x faster than 64 scalar Runs of the same packets
// with the same seeds — and byte-identical to them. Best-of-N paired
// trials per arm keep the guard robust on a loaded box; the binary exits
// nonzero on a miss so CI treats the word-parallel win as a regression
// gate rather than prose.
int BatchLaneSpeedupGuard() {
  const Env& env = Env::Get();
  bmv2::Interpreter interpreter(env.model, models::SaiParserSpec(),
                                models::DefaultCloneSessions());
  if (!interpreter.InstallEntries(env.entries).ok()) {
    std::cerr << "batch_lane guard: entry install failed\n";
    return 1;
  }
  bmv2::BatchInterpreter batch(interpreter);
  std::vector<std::string> packets;
  for (int i = 0; i < 64; ++i) {
    models::Ipv4PacketSpec spec;
    // Mix routed (10.x) and unrouted destinations, and vary the hash
    // inputs so WCMP member selection is exercised per lane.
    spec.dst_ip = (i % 3 == 0 ? 0x0B000000u : 0x0A000000u) +
                  static_cast<std::uint32_t>(i * 37);
    spec.src_ip = 0xC0A80100u + static_cast<std::uint32_t>(i);
    spec.src_port = static_cast<std::uint16_t>(20000 + i * 7);
    packets.push_back(models::BuildIpv4Packet(env.model, spec));
  }
  std::vector<bmv2::BatchInterpreter::LanePacket> lanes;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    lanes.push_back({packets[i], static_cast<std::uint16_t>(1 + i % 4)});
  }

  // Conformance before speed: the batch must be byte-identical to the 64
  // scalar runs at every checked seed.
  for (const std::uint64_t seed : {0ull, 1ull, 2ull}) {
    const auto outcomes = batch.RunBatch64(lanes, seed);
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      const auto scalar =
          interpreter.Run(lanes[i].bytes, lanes[i].ingress_port, seed);
      const bool same =
          outcomes[i].ok() == scalar.ok() &&
          (!scalar.ok() || outcomes[i]->Canonical() == scalar->Canonical());
      if (!same) {
        std::cerr << "batch_lane guard: lane " << i << " seed " << seed
                  << " diverged from scalar\n";
        return 1;
      }
    }
  }
  if (batch.stats().lanes_run == 0) {
    std::cerr << "batch_lane guard: every lane fell back to scalar\n";
    return 1;
  }

  constexpr int kTrials = 7;
  constexpr int kRepsPerTrial = 10;
  double best_scalar = 1e30;
  double best_batch = 1e30;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kRepsPerTrial; ++rep) {
      for (const auto& lane : lanes) {
        auto outcome = interpreter.Run(lane.bytes, lane.ingress_port,
                                       static_cast<std::uint64_t>(rep));
        benchmark::DoNotOptimize(outcome);
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kRepsPerTrial; ++rep) {
      auto outcomes =
          batch.RunBatch64(lanes, static_cast<std::uint64_t>(rep));
      benchmark::DoNotOptimize(outcomes);
    }
    auto t2 = std::chrono::steady_clock::now();
    best_scalar = std::min(
        best_scalar,
        std::chrono::duration<double>(t1 - t0).count() / kRepsPerTrial);
    best_batch = std::min(
        best_batch,
        std::chrono::duration<double>(t2 - t1).count() / kRepsPerTrial);
  }
  constexpr double kRequiredSpeedup = 4.0;
  const bool ok = best_scalar >= kRequiredSpeedup * best_batch;
  std::printf(
      "batch_lane: 64 packets scalar %.1fus, RunBatch64 %.1fus (%.1fx) — "
      "%s (gate: batch >= %.0fx faster)\n",
      best_scalar * 1e6, best_batch * 1e6, best_scalar / best_batch,
      ok ? "PASS" : "FAIL", kRequiredSpeedup);
  return ok ? 0 : 1;
}

// Coverage-instrumentation overhead guard, run after the benchmarks. A
// shard executed with the coverage scheduler in observe-only mode
// (guidance on, plateau_batches = 0: every edge is recorded and exported
// but no draw is ever steered, so the generated stream is byte-identical
// to the uniform baseline) must cost within 3% of the same shard with
// guidance off. Paired alternating trials with best-of-N per arm; the
// binary exits nonzero on a miss, so CI treats the "cheap counters" claim
// as a regression gate rather than prose.
int CoverageOverheadGuard() {
  WireShardSpec off_spec;
  off_spec.kind = WireShardSpec::Kind::kControlPlane;
  off_spec.scenario.entry_seed = 2;
  off_spec.control_plane.num_requests = 60;
  off_spec.control_plane.updates_per_request = 50;
  off_spec.control_plane.seed = 11;

  WireShardSpec on_spec = off_spec;
  on_spec.control_plane.guidance = fuzzer::Guidance::kCoverage;
  on_spec.control_plane.guidance_options.plateau_batches = 0;  // observe-only

  constexpr int kTrials = 5;
  double best_off = 1e30;
  double best_on = 1e30;
  std::uint64_t edges = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto t0 = std::chrono::steady_clock::now();
    const StatusOr<WireShardResult> off = ExecuteShardSpec(off_spec);
    const auto t1 = std::chrono::steady_clock::now();
    const StatusOr<WireShardResult> on = ExecuteShardSpec(on_spec);
    const auto t2 = std::chrono::steady_clock::now();
    if (!off.ok() || !on.ok()) {
      std::cerr << "coverage_overhead guard: shard failed: "
                << (off.ok() ? on.status() : off.status()) << "\n";
      return 1;
    }
    if (on->fuzzed_updates != off->fuzzed_updates ||
        on->incidents.size() != off->incidents.size()) {
      std::cerr << "coverage_overhead guard: observe-only instrumentation "
                   "changed the shard result\n";
      return 1;
    }
    edges = on->metrics.coverage_edges_total;
    best_off = std::min(
        best_off, std::chrono::duration<double>(t1 - t0).count());
    best_on = std::min(
        best_on, std::chrono::duration<double>(t2 - t1).count());
  }
  if (edges == 0) {
    std::cerr << "coverage_overhead guard: instrumentation recorded no "
                 "edges\n";
    return 1;
  }
  const bool ok = best_on <= best_off * 1.03 + 0.002;
  std::printf(
      "coverage_overhead: guidance off %.1fms, observe-only %.1fms "
      "(%+.2f%%, %llu edges) — %s (budget: +3%% of wall)\n",
      best_off * 1e3, best_on * 1e3, (best_on / best_off - 1.0) * 1e2,
      static_cast<unsigned long long>(edges), ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace switchv

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const int telemetry = switchv::TelemetryOverheadGuard();
  const int oracle_cache = switchv::OracleCacheSpeedupGuard();
  const int batch_lane = switchv::BatchLaneSpeedupGuard();
  const int coverage = switchv::CoverageOverheadGuard();
  if (telemetry != 0) return telemetry;
  if (oracle_cache != 0) return oracle_cache;
  return batch_lane != 0 ? batch_lane : coverage;
}
