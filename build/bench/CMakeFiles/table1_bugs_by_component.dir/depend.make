# Empty dependencies file for table1_bugs_by_component.
# This may be replaced when dependencies are built.
