file(REMOVE_RECURSE
  "CMakeFiles/table1_bugs_by_component.dir/table1_bugs_by_component.cc.o"
  "CMakeFiles/table1_bugs_by_component.dir/table1_bugs_by_component.cc.o.d"
  "table1_bugs_by_component"
  "table1_bugs_by_component.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_bugs_by_component.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
