file(REMOVE_RECURSE
  "CMakeFiles/fig7_resolution_histogram.dir/fig7_resolution_histogram.cc.o"
  "CMakeFiles/fig7_resolution_histogram.dir/fig7_resolution_histogram.cc.o.d"
  "fig7_resolution_histogram"
  "fig7_resolution_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_resolution_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
