# Empty compiler generated dependencies file for fig7_resolution_histogram.
# This may be replaced when dependencies are built.
