# Empty dependencies file for table2_trivial_suite.
# This may be replaced when dependencies are built.
