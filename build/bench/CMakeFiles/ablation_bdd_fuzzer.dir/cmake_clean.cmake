file(REMOVE_RECURSE
  "CMakeFiles/ablation_bdd_fuzzer.dir/ablation_bdd_fuzzer.cc.o"
  "CMakeFiles/ablation_bdd_fuzzer.dir/ablation_bdd_fuzzer.cc.o.d"
  "ablation_bdd_fuzzer"
  "ablation_bdd_fuzzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bdd_fuzzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
