# Empty dependencies file for ablation_bdd_fuzzer.
# This may be replaced when dependencies are built.
