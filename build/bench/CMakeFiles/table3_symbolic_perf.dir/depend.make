# Empty dependencies file for table3_symbolic_perf.
# This may be replaced when dependencies are built.
