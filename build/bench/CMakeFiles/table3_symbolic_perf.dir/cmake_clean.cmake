file(REMOVE_RECURSE
  "CMakeFiles/table3_symbolic_perf.dir/table3_symbolic_perf.cc.o"
  "CMakeFiles/table3_symbolic_perf.dir/table3_symbolic_perf.cc.o.d"
  "table3_symbolic_perf"
  "table3_symbolic_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_symbolic_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
