file(REMOVE_RECURSE
  "CMakeFiles/table3_fuzzer_perf.dir/table3_fuzzer_perf.cc.o"
  "CMakeFiles/table3_fuzzer_perf.dir/table3_fuzzer_perf.cc.o.d"
  "table3_fuzzer_perf"
  "table3_fuzzer_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_fuzzer_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
