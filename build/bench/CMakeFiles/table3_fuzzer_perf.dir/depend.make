# Empty dependencies file for table3_fuzzer_perf.
# This may be replaced when dependencies are built.
