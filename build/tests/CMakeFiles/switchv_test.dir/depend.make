# Empty dependencies file for switchv_test.
# This may be replaced when dependencies are built.
