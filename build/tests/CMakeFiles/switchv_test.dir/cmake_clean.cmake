file(REMOVE_RECURSE
  "CMakeFiles/switchv_test.dir/switchv_test.cc.o"
  "CMakeFiles/switchv_test.dir/switchv_test.cc.o.d"
  "switchv_test"
  "switchv_test.pdb"
  "switchv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
