# Empty compiler generated dependencies file for p4runtime_test.
# This may be replaced when dependencies are built.
