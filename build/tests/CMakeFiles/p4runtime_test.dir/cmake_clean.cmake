file(REMOVE_RECURSE
  "CMakeFiles/p4runtime_test.dir/p4runtime_test.cc.o"
  "CMakeFiles/p4runtime_test.dir/p4runtime_test.cc.o.d"
  "p4runtime_test"
  "p4runtime_test.pdb"
  "p4runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p4runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
