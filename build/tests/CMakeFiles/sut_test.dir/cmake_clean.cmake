file(REMOVE_RECURSE
  "CMakeFiles/sut_test.dir/sut_test.cc.o"
  "CMakeFiles/sut_test.dir/sut_test.cc.o.d"
  "sut_test"
  "sut_test.pdb"
  "sut_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
