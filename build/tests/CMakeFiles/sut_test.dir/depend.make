# Empty dependencies file for sut_test.
# This may be replaced when dependencies are built.
