# Empty dependencies file for p4constraints_test.
# This may be replaced when dependencies are built.
