
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/p4constraints_test.cc" "tests/CMakeFiles/p4constraints_test.dir/p4constraints_test.cc.o" "gcc" "tests/CMakeFiles/p4constraints_test.dir/p4constraints_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/switchv/CMakeFiles/switchv_switchv.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/switchv_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzzer/CMakeFiles/switchv_fuzzer.dir/DependInfo.cmake"
  "/root/repo/build/src/sut/CMakeFiles/switchv_sut.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/switchv_models.dir/DependInfo.cmake"
  "/root/repo/build/src/bmv2/CMakeFiles/switchv_bmv2.dir/DependInfo.cmake"
  "/root/repo/build/src/p4runtime/CMakeFiles/switchv_p4runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/p4constraints/CMakeFiles/switchv_p4constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/p4ir/CMakeFiles/switchv_p4ir.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/switchv_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/switchv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
