file(REMOVE_RECURSE
  "CMakeFiles/p4constraints_test.dir/p4constraints_test.cc.o"
  "CMakeFiles/p4constraints_test.dir/p4constraints_test.cc.o.d"
  "p4constraints_test"
  "p4constraints_test.pdb"
  "p4constraints_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p4constraints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
