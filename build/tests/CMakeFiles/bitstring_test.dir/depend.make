# Empty dependencies file for bitstring_test.
# This may be replaced when dependencies are built.
