file(REMOVE_RECURSE
  "CMakeFiles/bmv2_test.dir/bmv2_test.cc.o"
  "CMakeFiles/bmv2_test.dir/bmv2_test.cc.o.d"
  "bmv2_test"
  "bmv2_test.pdb"
  "bmv2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmv2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
