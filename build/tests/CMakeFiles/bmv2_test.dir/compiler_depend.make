# Empty compiler generated dependencies file for bmv2_test.
# This may be replaced when dependencies are built.
