# Empty dependencies file for p4ir_test.
# This may be replaced when dependencies are built.
