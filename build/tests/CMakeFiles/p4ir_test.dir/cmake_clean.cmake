file(REMOVE_RECURSE
  "CMakeFiles/p4ir_test.dir/p4ir_test.cc.o"
  "CMakeFiles/p4ir_test.dir/p4ir_test.cc.o.d"
  "p4ir_test"
  "p4ir_test.pdb"
  "p4ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p4ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
