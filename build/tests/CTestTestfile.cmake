# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bitstring_test[1]_include.cmake")
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/p4ir_test[1]_include.cmake")
include("/root/repo/build/tests/p4constraints_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_test[1]_include.cmake")
include("/root/repo/build/tests/p4runtime_test[1]_include.cmake")
include("/root/repo/build/tests/packet_test[1]_include.cmake")
include("/root/repo/build/tests/bmv2_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/sut_test[1]_include.cmake")
include("/root/repo/build/tests/symbolic_test[1]_include.cmake")
include("/root/repo/build/tests/fuzzer_test[1]_include.cmake")
include("/root/repo/build/tests/switchv_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
