# Empty compiler generated dependencies file for dataplane_diff.
# This may be replaced when dependencies are built.
