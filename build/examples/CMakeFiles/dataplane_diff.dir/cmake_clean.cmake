file(REMOVE_RECURSE
  "CMakeFiles/dataplane_diff.dir/dataplane_diff.cpp.o"
  "CMakeFiles/dataplane_diff.dir/dataplane_diff.cpp.o.d"
  "dataplane_diff"
  "dataplane_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataplane_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
