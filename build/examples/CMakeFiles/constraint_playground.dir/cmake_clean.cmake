file(REMOVE_RECURSE
  "CMakeFiles/constraint_playground.dir/constraint_playground.cpp.o"
  "CMakeFiles/constraint_playground.dir/constraint_playground.cpp.o.d"
  "constraint_playground"
  "constraint_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
