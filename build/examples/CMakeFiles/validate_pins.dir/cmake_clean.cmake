file(REMOVE_RECURSE
  "CMakeFiles/validate_pins.dir/validate_pins.cpp.o"
  "CMakeFiles/validate_pins.dir/validate_pins.cpp.o.d"
  "validate_pins"
  "validate_pins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_pins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
