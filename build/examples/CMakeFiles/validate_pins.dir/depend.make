# Empty dependencies file for validate_pins.
# This may be replaced when dependencies are built.
