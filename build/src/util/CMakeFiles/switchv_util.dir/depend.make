# Empty dependencies file for switchv_util.
# This may be replaced when dependencies are built.
