file(REMOVE_RECURSE
  "libswitchv_util.a"
)
