file(REMOVE_RECURSE
  "CMakeFiles/switchv_util.dir/bitstring.cc.o"
  "CMakeFiles/switchv_util.dir/bitstring.cc.o.d"
  "CMakeFiles/switchv_util.dir/status.cc.o"
  "CMakeFiles/switchv_util.dir/status.cc.o.d"
  "CMakeFiles/switchv_util.dir/strings.cc.o"
  "CMakeFiles/switchv_util.dir/strings.cc.o.d"
  "libswitchv_util.a"
  "libswitchv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
