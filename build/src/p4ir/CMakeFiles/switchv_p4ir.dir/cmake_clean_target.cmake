file(REMOVE_RECURSE
  "libswitchv_p4ir.a"
)
