# Empty dependencies file for switchv_p4ir.
# This may be replaced when dependencies are built.
