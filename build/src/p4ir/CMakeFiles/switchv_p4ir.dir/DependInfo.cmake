
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p4ir/builder.cc" "src/p4ir/CMakeFiles/switchv_p4ir.dir/builder.cc.o" "gcc" "src/p4ir/CMakeFiles/switchv_p4ir.dir/builder.cc.o.d"
  "/root/repo/src/p4ir/expr.cc" "src/p4ir/CMakeFiles/switchv_p4ir.dir/expr.cc.o" "gcc" "src/p4ir/CMakeFiles/switchv_p4ir.dir/expr.cc.o.d"
  "/root/repo/src/p4ir/p4_source.cc" "src/p4ir/CMakeFiles/switchv_p4ir.dir/p4_source.cc.o" "gcc" "src/p4ir/CMakeFiles/switchv_p4ir.dir/p4_source.cc.o.d"
  "/root/repo/src/p4ir/p4info.cc" "src/p4ir/CMakeFiles/switchv_p4ir.dir/p4info.cc.o" "gcc" "src/p4ir/CMakeFiles/switchv_p4ir.dir/p4info.cc.o.d"
  "/root/repo/src/p4ir/program.cc" "src/p4ir/CMakeFiles/switchv_p4ir.dir/program.cc.o" "gcc" "src/p4ir/CMakeFiles/switchv_p4ir.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/switchv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
