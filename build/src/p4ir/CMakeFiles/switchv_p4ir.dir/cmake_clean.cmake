file(REMOVE_RECURSE
  "CMakeFiles/switchv_p4ir.dir/builder.cc.o"
  "CMakeFiles/switchv_p4ir.dir/builder.cc.o.d"
  "CMakeFiles/switchv_p4ir.dir/expr.cc.o"
  "CMakeFiles/switchv_p4ir.dir/expr.cc.o.d"
  "CMakeFiles/switchv_p4ir.dir/p4_source.cc.o"
  "CMakeFiles/switchv_p4ir.dir/p4_source.cc.o.d"
  "CMakeFiles/switchv_p4ir.dir/p4info.cc.o"
  "CMakeFiles/switchv_p4ir.dir/p4info.cc.o.d"
  "CMakeFiles/switchv_p4ir.dir/program.cc.o"
  "CMakeFiles/switchv_p4ir.dir/program.cc.o.d"
  "libswitchv_p4ir.a"
  "libswitchv_p4ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchv_p4ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
