# Empty dependencies file for switchv_models.
# This may be replaced when dependencies are built.
