file(REMOVE_RECURSE
  "libswitchv_models.a"
)
