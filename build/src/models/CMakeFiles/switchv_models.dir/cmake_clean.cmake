file(REMOVE_RECURSE
  "CMakeFiles/switchv_models.dir/entry_gen.cc.o"
  "CMakeFiles/switchv_models.dir/entry_gen.cc.o.d"
  "CMakeFiles/switchv_models.dir/sai_model.cc.o"
  "CMakeFiles/switchv_models.dir/sai_model.cc.o.d"
  "CMakeFiles/switchv_models.dir/test_packets.cc.o"
  "CMakeFiles/switchv_models.dir/test_packets.cc.o.d"
  "libswitchv_models.a"
  "libswitchv_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchv_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
