file(REMOVE_RECURSE
  "libswitchv_packet.a"
)
