# Empty compiler generated dependencies file for switchv_packet.
# This may be replaced when dependencies are built.
