file(REMOVE_RECURSE
  "CMakeFiles/switchv_packet.dir/packet.cc.o"
  "CMakeFiles/switchv_packet.dir/packet.cc.o.d"
  "libswitchv_packet.a"
  "libswitchv_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchv_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
