
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/packet/packet.cc" "src/packet/CMakeFiles/switchv_packet.dir/packet.cc.o" "gcc" "src/packet/CMakeFiles/switchv_packet.dir/packet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/p4ir/CMakeFiles/switchv_p4ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/switchv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
