file(REMOVE_RECURSE
  "libswitchv_bmv2.a"
)
