# Empty dependencies file for switchv_bmv2.
# This may be replaced when dependencies are built.
