file(REMOVE_RECURSE
  "CMakeFiles/switchv_bmv2.dir/interpreter.cc.o"
  "CMakeFiles/switchv_bmv2.dir/interpreter.cc.o.d"
  "libswitchv_bmv2.a"
  "libswitchv_bmv2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchv_bmv2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
