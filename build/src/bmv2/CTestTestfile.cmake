# CMake generated Testfile for 
# Source directory: /root/repo/src/bmv2
# Build directory: /root/repo/build/src/bmv2
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
