file(REMOVE_RECURSE
  "libswitchv_switchv.a"
)
