# Empty dependencies file for switchv_switchv.
# This may be replaced when dependencies are built.
