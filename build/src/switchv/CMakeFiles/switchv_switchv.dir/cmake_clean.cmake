file(REMOVE_RECURSE
  "CMakeFiles/switchv_switchv.dir/control_plane.cc.o"
  "CMakeFiles/switchv_switchv.dir/control_plane.cc.o.d"
  "CMakeFiles/switchv_switchv.dir/dataplane.cc.o"
  "CMakeFiles/switchv_switchv.dir/dataplane.cc.o.d"
  "CMakeFiles/switchv_switchv.dir/experiment.cc.o"
  "CMakeFiles/switchv_switchv.dir/experiment.cc.o.d"
  "CMakeFiles/switchv_switchv.dir/nightly.cc.o"
  "CMakeFiles/switchv_switchv.dir/nightly.cc.o.d"
  "CMakeFiles/switchv_switchv.dir/trivial_suite.cc.o"
  "CMakeFiles/switchv_switchv.dir/trivial_suite.cc.o.d"
  "libswitchv_switchv.a"
  "libswitchv_switchv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchv_switchv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
