# Empty dependencies file for switchv_symbolic.
# This may be replaced when dependencies are built.
