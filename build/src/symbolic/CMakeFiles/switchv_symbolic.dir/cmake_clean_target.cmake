file(REMOVE_RECURSE
  "libswitchv_symbolic.a"
)
