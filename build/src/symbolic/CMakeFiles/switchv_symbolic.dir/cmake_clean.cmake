file(REMOVE_RECURSE
  "CMakeFiles/switchv_symbolic.dir/executor.cc.o"
  "CMakeFiles/switchv_symbolic.dir/executor.cc.o.d"
  "CMakeFiles/switchv_symbolic.dir/packet_gen.cc.o"
  "CMakeFiles/switchv_symbolic.dir/packet_gen.cc.o.d"
  "libswitchv_symbolic.a"
  "libswitchv_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchv_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
