file(REMOVE_RECURSE
  "CMakeFiles/switchv_p4constraints.dir/ast.cc.o"
  "CMakeFiles/switchv_p4constraints.dir/ast.cc.o.d"
  "CMakeFiles/switchv_p4constraints.dir/bdd.cc.o"
  "CMakeFiles/switchv_p4constraints.dir/bdd.cc.o.d"
  "CMakeFiles/switchv_p4constraints.dir/constraint_bdd.cc.o"
  "CMakeFiles/switchv_p4constraints.dir/constraint_bdd.cc.o.d"
  "CMakeFiles/switchv_p4constraints.dir/eval.cc.o"
  "CMakeFiles/switchv_p4constraints.dir/eval.cc.o.d"
  "CMakeFiles/switchv_p4constraints.dir/parser.cc.o"
  "CMakeFiles/switchv_p4constraints.dir/parser.cc.o.d"
  "libswitchv_p4constraints.a"
  "libswitchv_p4constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchv_p4constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
