file(REMOVE_RECURSE
  "libswitchv_p4constraints.a"
)
