# Empty compiler generated dependencies file for switchv_p4constraints.
# This may be replaced when dependencies are built.
