
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p4constraints/ast.cc" "src/p4constraints/CMakeFiles/switchv_p4constraints.dir/ast.cc.o" "gcc" "src/p4constraints/CMakeFiles/switchv_p4constraints.dir/ast.cc.o.d"
  "/root/repo/src/p4constraints/bdd.cc" "src/p4constraints/CMakeFiles/switchv_p4constraints.dir/bdd.cc.o" "gcc" "src/p4constraints/CMakeFiles/switchv_p4constraints.dir/bdd.cc.o.d"
  "/root/repo/src/p4constraints/constraint_bdd.cc" "src/p4constraints/CMakeFiles/switchv_p4constraints.dir/constraint_bdd.cc.o" "gcc" "src/p4constraints/CMakeFiles/switchv_p4constraints.dir/constraint_bdd.cc.o.d"
  "/root/repo/src/p4constraints/eval.cc" "src/p4constraints/CMakeFiles/switchv_p4constraints.dir/eval.cc.o" "gcc" "src/p4constraints/CMakeFiles/switchv_p4constraints.dir/eval.cc.o.d"
  "/root/repo/src/p4constraints/parser.cc" "src/p4constraints/CMakeFiles/switchv_p4constraints.dir/parser.cc.o" "gcc" "src/p4constraints/CMakeFiles/switchv_p4constraints.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/switchv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
