# CMake generated Testfile for 
# Source directory: /root/repo/src/fuzzer
# Build directory: /root/repo/build/src/fuzzer
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
