# Empty compiler generated dependencies file for switchv_fuzzer.
# This may be replaced when dependencies are built.
