file(REMOVE_RECURSE
  "libswitchv_fuzzer.a"
)
