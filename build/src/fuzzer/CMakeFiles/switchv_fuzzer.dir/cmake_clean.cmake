file(REMOVE_RECURSE
  "CMakeFiles/switchv_fuzzer.dir/generator.cc.o"
  "CMakeFiles/switchv_fuzzer.dir/generator.cc.o.d"
  "CMakeFiles/switchv_fuzzer.dir/oracle.cc.o"
  "CMakeFiles/switchv_fuzzer.dir/oracle.cc.o.d"
  "CMakeFiles/switchv_fuzzer.dir/state.cc.o"
  "CMakeFiles/switchv_fuzzer.dir/state.cc.o.d"
  "libswitchv_fuzzer.a"
  "libswitchv_fuzzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchv_fuzzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
