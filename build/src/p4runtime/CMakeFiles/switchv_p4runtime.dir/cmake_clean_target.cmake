file(REMOVE_RECURSE
  "libswitchv_p4runtime.a"
)
