# Empty dependencies file for switchv_p4runtime.
# This may be replaced when dependencies are built.
