file(REMOVE_RECURSE
  "CMakeFiles/switchv_p4runtime.dir/decoded_entry.cc.o"
  "CMakeFiles/switchv_p4runtime.dir/decoded_entry.cc.o.d"
  "CMakeFiles/switchv_p4runtime.dir/entry_builder.cc.o"
  "CMakeFiles/switchv_p4runtime.dir/entry_builder.cc.o.d"
  "CMakeFiles/switchv_p4runtime.dir/messages.cc.o"
  "CMakeFiles/switchv_p4runtime.dir/messages.cc.o.d"
  "CMakeFiles/switchv_p4runtime.dir/validator.cc.o"
  "CMakeFiles/switchv_p4runtime.dir/validator.cc.o.d"
  "libswitchv_p4runtime.a"
  "libswitchv_p4runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchv_p4runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
