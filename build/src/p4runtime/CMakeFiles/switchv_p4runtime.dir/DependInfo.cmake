
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p4runtime/decoded_entry.cc" "src/p4runtime/CMakeFiles/switchv_p4runtime.dir/decoded_entry.cc.o" "gcc" "src/p4runtime/CMakeFiles/switchv_p4runtime.dir/decoded_entry.cc.o.d"
  "/root/repo/src/p4runtime/entry_builder.cc" "src/p4runtime/CMakeFiles/switchv_p4runtime.dir/entry_builder.cc.o" "gcc" "src/p4runtime/CMakeFiles/switchv_p4runtime.dir/entry_builder.cc.o.d"
  "/root/repo/src/p4runtime/messages.cc" "src/p4runtime/CMakeFiles/switchv_p4runtime.dir/messages.cc.o" "gcc" "src/p4runtime/CMakeFiles/switchv_p4runtime.dir/messages.cc.o.d"
  "/root/repo/src/p4runtime/validator.cc" "src/p4runtime/CMakeFiles/switchv_p4runtime.dir/validator.cc.o" "gcc" "src/p4runtime/CMakeFiles/switchv_p4runtime.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/p4ir/CMakeFiles/switchv_p4ir.dir/DependInfo.cmake"
  "/root/repo/build/src/p4constraints/CMakeFiles/switchv_p4constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/switchv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
