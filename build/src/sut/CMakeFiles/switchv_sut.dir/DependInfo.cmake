
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sut/asic.cc" "src/sut/CMakeFiles/switchv_sut.dir/asic.cc.o" "gcc" "src/sut/CMakeFiles/switchv_sut.dir/asic.cc.o.d"
  "/root/repo/src/sut/bug_catalog.cc" "src/sut/CMakeFiles/switchv_sut.dir/bug_catalog.cc.o" "gcc" "src/sut/CMakeFiles/switchv_sut.dir/bug_catalog.cc.o.d"
  "/root/repo/src/sut/gnmi.cc" "src/sut/CMakeFiles/switchv_sut.dir/gnmi.cc.o" "gcc" "src/sut/CMakeFiles/switchv_sut.dir/gnmi.cc.o.d"
  "/root/repo/src/sut/orchestration.cc" "src/sut/CMakeFiles/switchv_sut.dir/orchestration.cc.o" "gcc" "src/sut/CMakeFiles/switchv_sut.dir/orchestration.cc.o.d"
  "/root/repo/src/sut/p4rt_server.cc" "src/sut/CMakeFiles/switchv_sut.dir/p4rt_server.cc.o" "gcc" "src/sut/CMakeFiles/switchv_sut.dir/p4rt_server.cc.o.d"
  "/root/repo/src/sut/switch_linux.cc" "src/sut/CMakeFiles/switchv_sut.dir/switch_linux.cc.o" "gcc" "src/sut/CMakeFiles/switchv_sut.dir/switch_linux.cc.o.d"
  "/root/repo/src/sut/switch_stack.cc" "src/sut/CMakeFiles/switchv_sut.dir/switch_stack.cc.o" "gcc" "src/sut/CMakeFiles/switchv_sut.dir/switch_stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/p4runtime/CMakeFiles/switchv_p4runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/p4ir/CMakeFiles/switchv_p4ir.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/switchv_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/bmv2/CMakeFiles/switchv_bmv2.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/switchv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/p4constraints/CMakeFiles/switchv_p4constraints.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
