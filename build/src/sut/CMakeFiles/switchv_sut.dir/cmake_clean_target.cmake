file(REMOVE_RECURSE
  "libswitchv_sut.a"
)
