# Empty dependencies file for switchv_sut.
# This may be replaced when dependencies are built.
