file(REMOVE_RECURSE
  "CMakeFiles/switchv_sut.dir/asic.cc.o"
  "CMakeFiles/switchv_sut.dir/asic.cc.o.d"
  "CMakeFiles/switchv_sut.dir/bug_catalog.cc.o"
  "CMakeFiles/switchv_sut.dir/bug_catalog.cc.o.d"
  "CMakeFiles/switchv_sut.dir/gnmi.cc.o"
  "CMakeFiles/switchv_sut.dir/gnmi.cc.o.d"
  "CMakeFiles/switchv_sut.dir/orchestration.cc.o"
  "CMakeFiles/switchv_sut.dir/orchestration.cc.o.d"
  "CMakeFiles/switchv_sut.dir/p4rt_server.cc.o"
  "CMakeFiles/switchv_sut.dir/p4rt_server.cc.o.d"
  "CMakeFiles/switchv_sut.dir/switch_linux.cc.o"
  "CMakeFiles/switchv_sut.dir/switch_linux.cc.o.d"
  "CMakeFiles/switchv_sut.dir/switch_stack.cc.o"
  "CMakeFiles/switchv_sut.dir/switch_stack.cc.o.d"
  "libswitchv_sut.a"
  "libswitchv_sut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchv_sut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
