// P4-constraints playground: parse an @entry_restriction constraint against
// the middleblock ACL schema, compile it to a BDD, and sample
// constraint-compliant and constraint-violating entries — the §7 extension
// in isolation.
//
//   $ ./constraint_playground                       # default constraint
//   $ ./constraint_playground 'vrf_id != 0'
//   $ ./constraint_playground \
//       'dst_ip::mask != 0 -> ether_type == 0x0800'

#include <iostream>

#include "p4constraints/constraint_bdd.h"
#include "util/rng.h"

using namespace switchv;
using namespace switchv::p4constraints;

namespace {

std::string DescribeKey(const KeyValuation& kv, const KeySchema& schema) {
  if (!kv.present) return "*";
  std::string out = "0x";
  static constexpr char kHex[] = "0123456789abcdef";
  uint128 v = kv.value;
  std::string hex;
  if (v == 0) hex = "0";
  while (v != 0) {
    hex.insert(hex.begin(), kHex[static_cast<unsigned>(v & 0xF)]);
    v >>= 4;
  }
  out += hex;
  if (schema.kind == KeySchema::Kind::kLpm) {
    out += "/" + std::to_string(kv.prefix_len);
  } else if (schema.kind == KeySchema::Kind::kTernary) {
    uint128 m = kv.mask;
    std::string mask_hex;
    if (m == 0) mask_hex = "0";
    while (m != 0) {
      mask_hex.insert(mask_hex.begin(), kHex[static_cast<unsigned>(m & 0xF)]);
      m >>= 4;
    }
    out += " &0x" + mask_hex;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // A mini ACL schema: the kinds of keys the paper's models constrain.
  TableSchema schema;
  schema.keys = {
      {"vrf_id", 12, KeySchema::Kind::kExact},
      {"ether_type", 16, KeySchema::Kind::kTernary},
      {"dst_ip", 32, KeySchema::Kind::kTernary},
      {"route", 32, KeySchema::Kind::kLpm},
      {"in_port", 9, KeySchema::Kind::kOptional},
  };
  const std::string source =
      argc > 1 ? argv[1]
               : "vrf_id != 0 && (dst_ip::mask != 0 -> ether_type == 0x0800)"
                 " && route::prefix_length >= 8";
  std::cout << "constraint: " << source << "\n";

  auto parsed = ParseConstraint(source, schema);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status() << "\n";
    return 1;
  }
  std::cout << "parsed AST: " << parsed->ToString() << "\n";

  auto compiled = ConstraintBdd::Compile(source, schema);
  if (!compiled.ok()) {
    std::cerr << "compile error: " << compiled.status() << "\n";
    return 1;
  }
  std::cout << "compiled to a BDD with " << compiled->node_count()
            << " nodes over " << compiled->layout().num_vars
            << " variables\n\n";

  Rng rng(2024);
  std::cout << "constraint-compliant samples (well-formed, satisfy the "
               "constraint):\n";
  for (int i = 0; i < 3; ++i) {
    auto sample = compiled->SampleSatisfying(rng);
    if (!sample.ok()) {
      std::cout << "  " << sample.status() << "\n";
      break;
    }
    std::cout << "  {";
    for (std::size_t k = 0; k < schema.keys.size(); ++k) {
      if (k > 0) std::cout << ", ";
      std::cout << schema.keys[k].name << "="
                << DescribeKey(sample->keys.at(schema.keys[k].name),
                               schema.keys[k]);
    }
    std::cout << "}  priority=" << sample->priority << "\n";
    auto verdict = EvalConstraint(*parsed, *sample);
    std::cout << "    reference evaluator agrees: "
              << (verdict.ok() && *verdict ? "yes" : "NO (bug!)") << "\n";
  }

  std::cout << "\nnear-miss violations (BDD node flip, paper §7):\n";
  for (int i = 0; i < 3; ++i) {
    auto sample = compiled->SampleViolating(rng);
    if (!sample.ok()) {
      std::cout << "  " << sample.status() << "\n";
      break;
    }
    std::cout << "  {";
    for (std::size_t k = 0; k < schema.keys.size(); ++k) {
      if (k > 0) std::cout << ", ";
      std::cout << schema.keys[k].name << "="
                << DescribeKey(sample->keys.at(schema.keys[k].name),
                               schema.keys[k]);
    }
    std::cout << "}\n";
    auto verdict = EvalConstraint(*parsed, *sample);
    std::cout << "    reference evaluator confirms violation: "
              << (verdict.ok() && !*verdict ? "yes" : "NO (bug!)") << "\n";
  }
  return 0;
}
