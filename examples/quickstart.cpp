// Quickstart for the SwitchV library, in two parts:
//
//  Part 1 — modeling: build a tiny P4 model with the IR builder, generate
//  test packets for it with p4-symbolic, and execute them on the reference
//  interpreter. This is the pure modeling/analysis API.
//
//  Part 2 — validation: validate the in-repo PINS-style fixed-function
//  switch against its SAI middleblock model, end to end (control plane via
//  p4-fuzzer, data plane via p4-symbolic). Note the fixed-function nature:
//  the switch only accepts the role models that describe its rigid
//  pipeline, exactly like the switches in the paper — arbitrary P4 programs
//  are for P4-*programmable* targets.
//
//   $ ./quickstart

#include <iostream>

#include "bmv2/interpreter.h"
#include "models/entry_gen.h"
#include "p4ir/builder.h"
#include "p4runtime/entry_builder.h"
#include "switchv/nightly.h"
#include "symbolic/packet_gen.h"

using namespace switchv;

// A two-table L3 pipeline: a VRF allocation table (with the paper's
// signature "vrf_id != 0" entry restriction) and an LPM routing table whose
// vrf key @refers_to the VRF table — Figure 2 of the paper, in miniature.
StatusOr<p4ir::Program> BuildTinyRouter() {
  using p4ir::ControlNode;
  using p4ir::Expr;
  using p4ir::MatchKind;
  using p4ir::ParamDef;
  using p4ir::Statement;

  p4ir::ProgramBuilder b("tiny_router");
  b.AddHeader("ethernet", {{"ethernet.dst_addr", 48},
                           {"ethernet.src_addr", 48},
                           {"ethernet.ether_type", 16}});
  b.AddHeader("ipv4", {{"ipv4.ttl", 8},
                       {"ipv4.protocol", 8},
                       {"ipv4.src_addr", 32},
                       {"ipv4.dst_addr", 32}});
  b.AddMetadata("local_metadata.vrf_id", 10);
  b.AddAction("no_action", {}, {});
  b.AddAction("drop_packet", {},
              {Statement::Assign(p4ir::kDropField, Expr::ConstantU(1, 1))});
  b.AddAction("forward", {ParamDef{"port", p4ir::kPortWidth}},
              {Statement::Assign(p4ir::kEgressPortField,
                                 Expr::Param("port", p4ir::kPortWidth))});
  b.AddAction("set_vrf", {ParamDef{"vrf_id", 10}},
              {Statement::Assign("local_metadata.vrf_id",
                                 Expr::Param("vrf_id", 10))});
  // Something must assign the VRF before routing can use it.
  b.AddTable("classifier")
      .Key("src_mac", "ethernet.src_addr", 48, MatchKind::kExact)
      .Action("set_vrf")
      .DefaultAction("no_action")
      .Size(16)
      .ParamReference("set_vrf", "vrf_id", "vrf_allocation", "vrf_id");
  b.AddTable("vrf_allocation")
      .Key("vrf_id", "local_metadata.vrf_id", 10, MatchKind::kExact)
      .Action("no_action")
      .DefaultAction("no_action")
      .Size(16)
      .EntryRestriction("vrf_id != 0");
  b.AddTable("routes")
      .ReferencingKey("vrf_id", "local_metadata.vrf_id", 10,
                      MatchKind::kExact, "vrf_allocation", "vrf_id")
      .Key("dst", "ipv4.dst_addr", 32, MatchKind::kLpm)
      .Action("forward")
      .Action("drop_packet")
      .DefaultAction("drop_packet")
      .Size(64);
  b.SetIngress({ControlNode::If(Expr::Valid("ipv4"),
                                {ControlNode::ApplyTable("classifier"),
                                 ControlNode::ApplyTable("vrf_allocation"),
                                 ControlNode::ApplyTable("routes")},
                                {})});
  return std::move(b).Build();
}

int PartOneModeling() {
  std::cout << "== Part 1: modeling a pipeline and generating packets ==\n";
  auto program = BuildTinyRouter();
  if (!program.ok()) {
    std::cerr << "model error: " << program.status() << "\n";
    return 1;
  }
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(*program);
  std::cout << "model '" << program->name << "': " << info.tables().size()
            << " tables, " << info.actions().size() << " actions\n";

  // Entries, addressed by name via the entry builder.
  auto vrf = p4rt::EntryBuilder(info, "vrf_allocation")
                 .Exact("vrf_id", BitString::FromUint(1, 10))
                 .Action("no_action")
                 .Build();
  auto classify = p4rt::EntryBuilder(info, "classifier")
                      .Exact("src_mac", *BitString::FromMac(
                                            "06:00:00:00:00:01"))
                      .Action("set_vrf",
                              {{"vrf_id", BitString::FromUint(1, 10)}})
                      .Build();
  auto route24 = p4rt::EntryBuilder(info, "routes")
                     .Exact("vrf_id", BitString::FromUint(1, 10))
                     .Lpm("dst", *BitString::FromIpv4("10.0.0.0"), 24)
                     .Action("forward",
                             {{"port", BitString::FromUint(7, 16)}})
                     .Build();
  auto route32 = p4rt::EntryBuilder(info, "routes")
                     .Exact("vrf_id", BitString::FromUint(1, 10))
                     .Lpm("dst", *BitString::FromIpv4("10.0.0.9"), 32)
                     .Action("drop_packet")
                     .Build();
  const std::vector<p4rt::TableEntry> entries = {*vrf, *classify, *route24,
                                                 *route32};

  // Symbolic test packet generation: one packet per entry and per miss.
  packet::ParserSpec parser;
  parser.start_header = "ethernet";
  parser.transitions = {{"ethernet.ether_type", 0x0800, "ipv4"}};
  symbolic::GenerationStats stats;
  auto packets = symbolic::GeneratePackets(
      *program, parser, entries, symbolic::CoverageMode::kEntryCoverage,
      nullptr, &stats);
  std::cout << "p4-symbolic: " << stats.targets_covered << "/"
            << stats.targets_total << " coverage targets, "
            << stats.solver_queries << " Z3 queries\n";

  // Run each packet on the reference interpreter.
  bmv2::Interpreter simulator(*program, parser);
  (void)simulator.InstallEntries(entries);
  for (const symbolic::TestPacket& packet : *packets) {
    auto outcome = simulator.Run(packet.bytes, packet.ingress_port, 0);
    std::cout << "  " << packet.target_id << " -> "
              << outcome->Canonical().substr(0, 48) << "\n";
  }
  return 0;
}

int PartTwoValidation() {
  std::cout << "\n== Part 2: validating the fixed-function switch ==\n";
  auto model = models::BuildSaiProgram(models::Role::kMiddleblock);
  if (!model.ok()) {
    std::cerr << model.status() << "\n";
    return 1;
  }
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(*model);
  models::WorkloadSpec workload;
  workload.num_ipv4_routes = 20;
  workload.num_ipv6_routes = 6;
  workload.num_acl_ingress = 6;
  workload.num_pre_ingress = 6;
  auto entries = models::GenerateEntries(info, models::Role::kMiddleblock,
                                         workload, /*seed=*/1);
  NightlyOptions options;
  options.control_plane.num_requests = 8;
  const NightlyReport report = RunNightlyValidation(
      /*faults=*/nullptr, *model, models::SaiParserSpec(), *entries, options);
  std::cout << "nightly run: " << report.fuzzed_updates
            << " fuzzed updates, " << report.packets_tested
            << " test packets, " << report.incidents.size()
            << " incidents (healthy switch: expect 0)\n";
  for (const Incident& incident : report.incidents) {
    std::cout << "  [" << DetectorName(incident.detector) << "] "
              << incident.summary << "\n";
  }
  return report.incidents.empty() ? 0 : 1;
}

int main() {
  const int part1 = PartOneModeling();
  const int part2 = PartTwoValidation();
  return part1 + part2;
}
