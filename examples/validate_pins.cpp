// Full nightly validation of a PINS-style middleblock switch, with an
// optional injected bug from the catalog — the workflow of paper §6.
//
//   $ ./validate_pins               # healthy switch: expect a clean run
//   $ ./validate_pins lldp-daemon-punts
//   $ ./validate_pins list          # show all injectable bugs

#include <iostream>

#include "switchv/experiment.h"

using namespace switchv;

int main(int argc, char** argv) {
  const std::string arg = argc > 1 ? argv[1] : "";
  if (arg == "list") {
    for (const sut::BugInfo& bug : sut::BugCatalog()) {
      std::cout << bug.name << "  [" << ComponentName(bug.component) << ", "
                << (bug.stack == sut::Stack::kPins ? "PINS" : "Cerberus")
                << "]\n    " << bug.description << "\n";
    }
    return 0;
  }

  ExperimentOptions options;
  options.nightly.control_plane.num_requests = 20;

  if (arg.empty()) {
    // Healthy run.
    auto model = models::BuildSaiProgram(models::Role::kMiddleblock);
    if (!model.ok()) {
      std::cerr << model.status() << "\n";
      return 1;
    }
    const p4ir::P4Info info = p4ir::P4Info::FromProgram(*model);
    auto entries = models::GenerateEntries(
        info, models::Role::kMiddleblock, options.workload, /*seed=*/1);
    const NightlyReport report =
        RunNightlyValidation(nullptr, *model, models::SaiParserSpec(),
                             *entries, options.nightly);
    std::cout << "nightly validation of a healthy PINS middleblock:\n"
              << "  fuzzed updates: " << report.fuzzed_updates << "\n"
              << "  test packets:   " << report.packets_tested << "\n"
              << "  incidents:      " << report.incidents.size()
              << (report.incidents.empty() ? "  (clean)" : "") << "\n";
    for (const Incident& incident : report.incidents) {
      std::cout << "  [" << DetectorName(incident.detector) << "] "
                << incident.summary << "\n";
    }
    return report.incidents.empty() ? 0 : 1;
  }

  // Run against one injected bug.
  const sut::BugInfo* bug = nullptr;
  for (const sut::BugInfo& candidate : sut::BugCatalog()) {
    if (candidate.name == arg) bug = &candidate;
  }
  if (bug == nullptr) {
    std::cerr << "unknown bug '" << arg << "'; try: ./validate_pins list\n";
    return 2;
  }
  std::cout << "injected bug: " << bug->name << "\n  " << bug->description
            << "\n  component: " << ComponentName(bug->component)
            << ", expected detector: "
            << (bug->expected_detector == sut::Detector::kFuzzer
                    ? "p4-fuzzer"
                    : "p4-symbolic")
            << "\n\n";
  auto result = RunNightlyForBug(*bug, options);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  if (!result->detected) {
    std::cout << "NOT DETECTED by this nightly run\n";
    return 1;
  }
  std::cout << "DETECTED by "
            << DetectorName(*result->detector) << " ("
            << result->incident_count << " incidents)\n";
  int shown = 0;
  for (const Incident& incident : result->report.incidents) {
    if (++shown > 5) break;
    std::cout << "  [" << DetectorName(incident.detector) << "] "
              << incident.summary << "\n      " << incident.details << "\n";
  }
  return 0;
}
