// Full nightly validation of a PINS-style middleblock switch, with an
// optional injected bug from the catalog — the workflow of paper §6.
//
//   $ ./validate_pins               # healthy switch: expect a clean run
//   $ ./validate_pins lldp-daemon-punts
//   $ ./validate_pins list          # show all injectable bugs
//
// With --fleet local:N the run provisions N `switchv_worker_host`
// processes on this machine (no hand-started daemons), dispatches the
// campaign shards to them over the authenticated transport, and drains
// the fleet afterwards. The report is byte-identical to the in-process
// run. Binaries are found next to this one, or via $SWITCHV_WORKER_HOST /
// $SWITCHV_SHARD_WORKER.
//
// Live telemetry (switchv/telemetry.h; strictly observational — the
// report is byte-identical with it on or off):
//   --watch              repaint a one-line campaign progress ticker
//   --telemetry-port=N   serve GET /metrics (Prometheus), /status (JSON),
//                        and /events?since=K (JSONL journal) on
//                        127.0.0.1:N while the run is live (0 = pick an
//                        ephemeral port and print it)
//   --telemetry-linger=S keep the endpoint answering for S seconds after
//                        the run (frozen final snapshot + full journal),
//                        so scrapers racing a short campaign still land

#include <libgen.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <thread>

#include "switchv/experiment.h"
#include "switchv/fleet.h"
#include "switchv/shard_io.h"
#include "switchv/telemetry.h"
#include "switchv/telemetry_http.h"

using namespace switchv;

namespace {

// Resolves a sibling tool binary: $ENV_VAR first, then
// <dir-of-this-binary>/../tools/<name>.
std::string ResolveTool(const char* argv0, const char* env_var,
                        const std::string& name) {
  const char* env = std::getenv(env_var);
  if (env != nullptr && *env != '\0') return env;
  std::string self(argv0);
  std::string dir(dirname(self.data()));
  const std::string candidate = dir + "/../tools/" + name;
  if (::access(candidate.c_str(), X_OK) == 0) return candidate;
  return "";
}

// Builds and provisions a fleet for "--fleet local:N". Returns null (with
// a message) when provisioning fails. `journal` (nullable) receives the
// host-launched / host-hello lifecycle events when telemetry is attached.
std::unique_ptr<Fleet> ProvisionLocalFleet(const char* argv0,
                                           const std::string& spec,
                                           EventJournal* journal) {
  int size = 2;
  if (spec.rfind("local", 0) != 0) {
    std::cerr << "unsupported --fleet spec '" << spec
              << "' (expected local:N)\n";
    return nullptr;
  }
  const std::size_t colon = spec.find(':');
  if (colon != std::string::npos) size = std::atoi(spec.c_str() + colon + 1);
  if (size < 1) size = 1;

  FleetOptions options;
  options.backend = FleetOptions::Backend::kLocalProcess;
  options.size = size;
  options.host_binary =
      ResolveTool(argv0, "SWITCHV_WORKER_HOST", "switchv_worker_host");
  options.worker_binary =
      ResolveTool(argv0, "SWITCHV_SHARD_WORKER", "switchv_shard_worker");
  options.auth_secret = "validate-pins-local-fleet";
  options.journal = journal;
  if (options.host_binary.empty() || options.worker_binary.empty()) {
    std::cerr << "--fleet: could not locate switchv_worker_host / "
                 "switchv_shard_worker (set $SWITCHV_WORKER_HOST and "
                 "$SWITCHV_SHARD_WORKER)\n";
    return nullptr;
  }
  auto fleet = std::make_unique<Fleet>(options);
  const Status provisioned = fleet->Provision();
  if (!provisioned.ok()) {
    std::cerr << "--fleet: " << provisioned << "\n";
    return nullptr;
  }
  std::cout << "provisioned " << size << " local worker host(s):";
  for (const Fleet::HostInfo& host : fleet->Hosts()) {
    std::cout << " " << host.endpoint;
  }
  std::cout << "\n";
  return fleet;
}

// Repaints the campaign progress line on stderr until destroyed.
struct ProgressWatcher {
  explicit ProgressWatcher(CampaignTelemetry* telemetry) {
    thread = std::thread([this, telemetry] {
      while (!stop.load()) {
        std::cerr << "\r\x1b[K" << telemetry->ProgressLine() << std::flush;
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
      }
      std::cerr << "\r\x1b[K" << telemetry->ProgressLine() << "\n";
    });
  }
  ~ProgressWatcher() {
    stop.store(true);
    if (thread.joinable()) thread.join();
  }
  std::atomic<bool> stop{false};
  std::thread thread;
};

}  // namespace

int main(int argc, char** argv) {
  std::string arg;
  std::string fleet_spec;
  bool watch = false;
  int telemetry_port = -1;  // -1 = HTTP endpoint disabled
  int linger_seconds = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view token = argv[i];
    if (token.rfind("--fleet=", 0) == 0) {
      fleet_spec = std::string(token.substr(std::strlen("--fleet=")));
    } else if (token == "--fleet" && i + 1 < argc) {
      fleet_spec = argv[++i];
    } else if (token == "--watch") {
      watch = true;
    } else if (token.rfind("--telemetry-port=", 0) == 0) {
      telemetry_port =
          std::atoi(std::string(token.substr(std::strlen("--telemetry-port=")))
                        .c_str());
    } else if (token.rfind("--telemetry-linger=", 0) == 0) {
      linger_seconds = std::atoi(
          std::string(token.substr(std::strlen("--telemetry-linger=")))
              .c_str());
    } else {
      arg = std::string(token);
    }
  }
  if (arg == "list") {
    for (const sut::BugInfo& bug : sut::BugCatalog()) {
      std::cout << bug.name << "  [" << ComponentName(bug.component) << ", "
                << (bug.stack == sut::Stack::kPins ? "PINS" : "Cerberus")
                << "]\n    " << bug.description << "\n";
    }
    return 0;
  }

  ExperimentOptions options;
  options.nightly.control_plane.num_requests = 20;

  CampaignTelemetry telemetry;
  TelemetryHttpServer http;
  std::unique_ptr<ProgressWatcher> watcher;
  if (watch || telemetry_port >= 0) {
    options.nightly.telemetry = &telemetry;
  }
  if (telemetry_port >= 0) {
    http.ServeCampaignTelemetry(&telemetry);
    const Status started = http.Start(telemetry_port);
    if (!started.ok()) {
      std::cerr << "--telemetry-port: " << started << "\n";
      return 2;
    }
    std::cout << "telemetry: http://127.0.0.1:" << http.port()
              << "{/metrics,/status,/events?since=0}\n";
  }
  if (watch) watcher = std::make_unique<ProgressWatcher>(&telemetry);

  // Campaign-completing paths exit through this: the endpoint stays up for
  // the linger window so a scraper that raced a short campaign still gets
  // the frozen final snapshot and the full journal.
  const auto finish = [&](int code) {
    if (linger_seconds > 0 && http.running()) {
      std::cout << "telemetry: lingering " << linger_seconds << "s\n"
                << std::flush;
      std::this_thread::sleep_for(std::chrono::seconds(linger_seconds));
    }
    return code;
  };

  std::unique_ptr<Fleet> fleet;
  if (!fleet_spec.empty()) {
    fleet = ProvisionLocalFleet(
        argv[0], fleet_spec,
        options.nightly.telemetry != nullptr ? &telemetry.journal() : nullptr);
    if (fleet == nullptr) return 2;
    options.nightly.execution = CampaignOptions::Execution::kRemote;
    options.nightly.fleet = fleet.get();
    // Spread shards across the fleet; RunNightlyForBug builds the worker
    // scenario automatically, and the healthy path below builds its own.
    options.nightly.parallelism = 2;
    options.nightly.control_plane_shards = 2;
    options.nightly.dataplane_shards = 2;
  }

  if (arg.empty()) {
    // Healthy run.
    auto model = models::BuildSaiProgram(models::Role::kMiddleblock);
    if (!model.ok()) {
      std::cerr << model.status() << "\n";
      return 1;
    }
    const p4ir::P4Info info = p4ir::P4Info::FromProgram(*model);
    auto entries = models::GenerateEntries(
        info, models::Role::kMiddleblock, options.workload, /*seed=*/1);
    if (fleet != nullptr) {
      ShardScenario scenario;
      scenario.role = models::Role::kMiddleblock;
      scenario.workload = options.workload;
      scenario.entry_seed = 1;
      options.nightly.scenario = scenario;
    }
    const NightlyReport report =
        RunNightlyValidation(nullptr, *model, models::SaiParserSpec(),
                             *entries, options.nightly);
    std::cout << "nightly validation of a healthy PINS middleblock:\n"
              << "  fuzzed updates: " << report.fuzzed_updates << "\n"
              << "  test packets:   " << report.packets_tested << "\n"
              << "  incidents:      " << report.incidents.size()
              << (report.incidents.empty() ? "  (clean)" : "") << "\n";
    for (const Incident& incident : report.incidents) {
      std::cout << "  [" << DetectorName(incident.detector) << "] "
                << incident.summary << "\n";
    }
    return finish(report.incidents.empty() ? 0 : 1);
  }

  // Run against one injected bug.
  const sut::BugInfo* bug = nullptr;
  for (const sut::BugInfo& candidate : sut::BugCatalog()) {
    if (candidate.name == arg) bug = &candidate;
  }
  if (bug == nullptr) {
    std::cerr << "unknown bug '" << arg << "'; try: ./validate_pins list\n";
    return 2;
  }
  std::cout << "injected bug: " << bug->name << "\n  " << bug->description
            << "\n  component: " << ComponentName(bug->component)
            << ", expected detector: "
            << (bug->expected_detector == sut::Detector::kFuzzer
                    ? "p4-fuzzer"
                    : "p4-symbolic")
            << "\n\n";
  auto result = RunNightlyForBug(*bug, options);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  if (!result->detected) {
    std::cout << "NOT DETECTED by this nightly run\n";
    return finish(1);
  }
  std::cout << "DETECTED by "
            << DetectorName(*result->detector) << " ("
            << result->incident_count << " incidents)\n";
  int shown = 0;
  for (const Incident& incident : result->report.incidents) {
    if (++shown > 5) break;
    std::cout << "  [" << DetectorName(incident.detector) << "] "
              << incident.summary << "\n      " << incident.details << "\n";
  }
  return finish(0);
}
