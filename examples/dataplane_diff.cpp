// Data-plane differential debugging: inject the Cerberus encapsulation
// endianness bug (Appendix A) into the WAN switch, generate symbolic test
// packets, and show the byte-level divergence between the switch and the
// P4 model — the kind of incident log a SwitchV user root-causes.
//
//   $ ./dataplane_diff

#include <iomanip>
#include <iostream>

#include "bmv2/interpreter.h"
#include "models/entry_gen.h"
#include "sut/switch_stack.h"
#include "switchv/experiment.h"
#include "symbolic/packet_gen.h"
#include "util/strings.h"

using namespace switchv;

namespace {

void PrintHexDiff(const std::string& a, const std::string& b) {
  const std::size_t n = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < n; i += 16) {
    std::string line_a;
    std::string line_b;
    std::string marks;
    for (std::size_t j = i; j < i + 16 && j < n; ++j) {
      const std::string ha =
          j < a.size() ? BytesToHex(a.substr(j, 1)) : "  ";
      const std::string hb =
          j < b.size() ? BytesToHex(b.substr(j, 1)) : "  ";
      line_a += ha + " ";
      line_b += hb + " ";
      marks += (ha != hb ? "^^ " : "   ");
    }
    std::cout << "    model:  " << line_a << "\n    switch: " << line_b
              << "\n            " << marks << "\n";
  }
}

}  // namespace

int main() {
  auto model = models::BuildSaiProgram(models::Role::kWan);
  if (!model.ok()) {
    std::cerr << model.status() << "\n";
    return 1;
  }
  const p4ir::P4Info info = p4ir::P4Info::FromProgram(*model);
  models::WorkloadSpec workload = ExperimentOptions::SmallWorkload();
  workload.num_tunnels = 6;
  workload.num_decap = 3;
  auto entries =
      models::GenerateEntries(info, models::Role::kWan, workload, /*seed=*/1);

  // The buggy switch: encap writes the destination IP byte-reversed.
  sut::FaultRegistry faults;
  faults.Activate(sut::Fault::kEncapReversedDstIp);
  sut::SwitchUnderTest sut(&faults, models::DefaultCloneSessions(),
                           model->cpu_port);
  (void)sut.SetForwardingPipelineConfig(info).ok();
  p4rt::WriteRequest request;
  for (const p4rt::TableEntry& entry : *entries) {
    request.updates.push_back(p4rt::Update{p4rt::UpdateType::kInsert, entry});
  }
  (void)sut.Write(request);

  bmv2::Interpreter reference(*model, models::SaiParserSpec(),
                              models::DefaultCloneSessions());
  (void)reference.InstallEntries(*entries);

  std::cout << "generating test packets (entry coverage over "
            << entries->size() << " entries)...\n";
  auto packets = symbolic::GeneratePackets(*model, models::SaiParserSpec(),
                                           *entries,
                                           symbolic::CoverageMode::kEntryCoverage);
  if (!packets.ok()) {
    std::cerr << packets.status() << "\n";
    return 1;
  }

  int divergences = 0;
  for (const symbolic::TestPacket& packet : *packets) {
    const packet::ForwardingOutcome observed =
        sut.InjectPacket(packet.bytes, packet.ingress_port);
    auto behaviors =
        reference.EnumerateBehaviors(packet.bytes, packet.ingress_port);
    bool admissible = false;
    for (const packet::ForwardingOutcome& b : *behaviors) {
      if (b == observed) admissible = true;
    }
    if (admissible) continue;
    ++divergences;
    if (divergences > 2) continue;  // show the first two in detail
    std::cout << "\nDIVERGENCE on packet for " << packet.target_id
              << " (ingress port " << packet.ingress_port << ")\n";
    const packet::ForwardingOutcome& expected = (*behaviors)[0];
    std::cout << "  model verdict:  " << (expected.dropped ? "drop" : "fwd")
              << " port " << expected.egress_port << "\n";
    std::cout << "  switch verdict: " << (observed.dropped ? "drop" : "fwd")
              << " port " << observed.egress_port << "\n";
    if (!expected.dropped && !observed.dropped) {
      std::cout << "  egress bytes (outer IPv4 dst at offset 30):\n";
      PrintHexDiff(expected.packet_bytes.substr(0, 48),
                   observed.packet_bytes.substr(0, 48));
    }
  }
  std::cout << "\n" << divergences << " diverging packets out of "
            << packets->size() << " — root cause: tunnel encapsulation "
            << "writes the destination IP with reversed byte order\n";
  return divergences > 0 ? 0 : 1;
}
