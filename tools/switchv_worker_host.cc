// switchv_worker_host: serves campaign shards to remote engines over TCP.
//
// The host side of Execution::kRemote (switchv/shard_transport.h): accepts
// connections from campaign dispatchers, and for every kShardRequest frame
// runs the shard in a `switchv_shard_worker` subprocess — the same crash
// isolation as local subprocess execution — streaming kHeartbeat frames
// while it runs and answering with a kShardResult (the worker's result
// line, forwarded verbatim) or a kShardError classifying the failure.
//
// Idempotency: results are cached by (campaign_id, shard, attempt, spec
// digest). A dispatcher that lost the connection mid-transfer resends the
// same key and gets the cached bytes back — the shard never runs twice, and
// the merged campaign report stays byte-identical across reconnects.
//
// Live telemetry: a version-2 request (telemetry interval > 0) makes the
// host run the worker with --telemetry-interval and forward each interim
// sample line as a kTelemetry frame while the shard runs; it also answers
// the dispatcher's "ping <seq> <ns>" heartbeats with matching pongs for RTT
// sampling. Version-1 requests get the exact pre-telemetry behaviour.
//
// Flags:
//   --port=N                listen port; 0 (default) picks an ephemeral one
//   --bind=HOST             bind address (default 127.0.0.1)
//   --worker=PATH           shard worker binary; default $SWITCHV_SHARD_WORKER
//   --slots=N               max concurrent shard subprocesses (default: cores)
//   --heartbeat-interval=S  seconds between heartbeats (default 1.0)
//   --worker-arg=ARG        extra argv for every worker (repeatable)
//   --drop-once-on-shard=N  test hook: close the connection (once) instead
//                           of serving shard N — exercises reconnect/resend
//   --auth-secret=SECRET    require HMAC-SHA256 frame authentication with
//                           this shared secret (default: the
//                           $SWITCHV_FLEET_SECRET environment variable;
//                           both empty = unauthenticated)
//
// On startup the chosen endpoint is announced on stdout:
//   switchv_worker_host listening on HOST:PORT
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "switchv/shard_io.h"
#include "switchv/shard_transport.h"

namespace {

using switchv::Frame;
using switchv::FrameDecoder;
using switchv::FrameType;
using switchv::RemoteShardError;
using switchv::RemoteShardRequest;

struct HostConfig {
  std::string worker_binary;
  std::vector<std::string> worker_args;
  double heartbeat_interval = 1.0;
  int drop_once_on_shard = -1;
  // Shared secret for frame authentication (shard_transport.h). Non-empty
  // makes every connection prove itself with a sealed hello before any
  // request is parsed; empty serves the unauthenticated protocol.
  std::string auth_secret;
};

HostConfig g_config;
std::atomic<bool> g_drop_fired{false};

// ---- shard-subprocess slots ----

class SlotGate {
 public:
  void set_limit(int limit) { limit_ = limit > 0 ? limit : 1; }
  void Acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return in_use_ < limit_; });
    ++in_use_;
  }
  void Release() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --in_use_;
    }
    cv_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int limit_ = 1;
  int in_use_ = 0;
};

SlotGate g_slots;

// ---- idempotent result cache ----

class ResultCache {
 public:
  bool Lookup(const std::string& key, std::string* result) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = cache_.find(key);
    if (it == cache_.end()) return false;
    *result = it->second;
    return true;
  }
  void Insert(const std::string& key, const std::string& result) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!cache_.try_emplace(key, result).second) return;
    order_.push_back(key);
    while (order_.size() > kCapacity) {
      cache_.erase(order_.front());
      order_.pop_front();
    }
  }

 private:
  static constexpr std::size_t kCapacity = 1024;
  std::mutex mu_;
  std::map<std::string, std::string> cache_;
  std::deque<std::string> order_;
};

ResultCache g_results;

std::uint64_t Fnv1a(std::string_view bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string CacheKey(const RemoteShardRequest& request) {
  return std::to_string(request.campaign_id) + ":" +
         std::to_string(request.shard) + ":" +
         std::to_string(request.attempt) + ":" +
         std::to_string(Fnv1a(request.spec_line));
}

// The worker's result is the last non-empty stdout line (it may log above
// it — including interim telemetry samples); forwarded verbatim — the
// dispatcher validates it, exactly as it validates a local subprocess's
// stdout.
std::string_view LastNonEmptyLine(std::string_view out) {
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.remove_suffix(1);
  }
  const std::size_t newline = out.rfind('\n');
  return newline == std::string_view::npos ? out : out.substr(newline + 1);
}

// Serializes frame sends on one connection. Two threads write while a
// shard runs — the connection thread (heartbeats, pongs, results) and the
// worker-runner thread (forwarded telemetry samples) — and FrameAuthenticator
// advances its send sequence on every Seal, so seal+send must be atomic.
struct ConnectionSender {
  int fd;
  switchv::FrameAuthenticator& auth;
  std::mutex mu;

  bool Send(FrameType type, std::string_view payload, double timeout) {
    const std::lock_guard<std::mutex> lock(mu);
    return switchv::SendFrame(fd, type, auth.Seal(type, payload), timeout)
        .ok();
  }
};

// Drains whatever the dispatcher sent without blocking, answering
// "ping <seq> <ns>" heartbeats with matching pongs (the client computes its
// RTT from the echoed timestamp). Returns false when the connection is
// closed, corrupt, fails authentication, or speaks out of turn — any frame
// other than a heartbeat is a protocol violation while a shard runs.
bool DrainIncoming(ConnectionSender& sender, FrameDecoder& decoder,
                   switchv::FrameAuthenticator& auth) {
  char buffer[4096];
  while (true) {
    const ssize_t n =
        ::recv(sender.fd, buffer, sizeof(buffer), MSG_DONTWAIT);
    if (n > 0) {
      decoder.Feed(std::string_view(buffer, static_cast<std::size_t>(n)));
      continue;
    }
    if (n == 0) return false;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
    return false;
  }
  while (true) {
    switchv::StatusOr<std::optional<Frame>> next = decoder.Next();
    if (!next.ok()) return false;
    if (!next->has_value()) return true;
    Frame& frame = **next;
    std::string payload;
    if (auth.enabled()) {
      switchv::StatusOr<std::string> opened =
          auth.Open(frame.type, frame.payload);
      if (!opened.ok()) return false;
      payload = std::move(*opened);
    } else {
      payload = std::move(frame.payload);
    }
    if (frame.type != FrameType::kHeartbeat) return false;
    if (payload.rfind("ping ", 0) == 0 &&
        !sender.Send(FrameType::kHeartbeat, "pong " + payload.substr(5),
                     5)) {
      return false;
    }
  }
}

// Runs the shard subprocess on a helper thread while this (connection)
// thread streams heartbeats and answers pings, so a long shard never trips
// the dispatcher's liveness timer. Returns false when the connection is
// gone; the shard still runs to completion and its result is cached for
// the resend.
bool ServeRequest(ConnectionSender& sender, FrameDecoder& decoder,
                  const RemoteShardRequest& request,
                  switchv::FrameAuthenticator& auth) {
  const std::string key = CacheKey(request);
  std::string cached;
  if (g_results.Lookup(key, &cached)) {
    return sender.Send(FrameType::kShardResult, cached, 30);
  }

  // A version-2 request opts the shard into live telemetry: the worker
  // emits interim sample lines on stdout, which are forwarded — from the
  // runner thread, as they arrive — as kTelemetry frames. Send failures
  // are ignored here: samples are observational, and connection death is
  // detected by the heartbeat path.
  std::vector<std::string> worker_args = g_config.worker_args;
  const bool telemetry = request.telemetry_interval_seconds > 0;
  std::string sample_buffer;
  std::function<void(std::string_view)> on_stdout;
  if (telemetry) {
    worker_args.push_back("--telemetry-interval=" +
                          std::to_string(request.telemetry_interval_seconds));
    on_stdout = [&sender, &sample_buffer](std::string_view chunk) {
      sample_buffer.append(chunk);
      std::size_t newline;
      while ((newline = sample_buffer.find('\n')) != std::string::npos) {
        const std::string line = sample_buffer.substr(0, newline);
        sample_buffer.erase(0, newline + 1);
        if (switchv::LooksLikeTelemetrySample(line)) {
          (void)sender.Send(FrameType::kTelemetry, line, 5);
        }
      }
    };
  }

  g_slots.Acquire();
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  switchv::WorkerProcessResult proc;
  std::thread runner([&] {
    proc = switchv::RunWorkerProcess(g_config.worker_binary, worker_args,
                                     request.spec_line + "\n",
                                     request.timeout_seconds, on_stdout);
    {
      const std::lock_guard<std::mutex> lock(mu);
      done = true;
    }
    cv.notify_one();
  });
  bool peer_alive = true;
  {
    // Short wait slices keep ping→pong turnaround well under the client's
    // RTT resolution; full heartbeats still go out once per interval.
    std::unique_lock<std::mutex> lock(mu);
    auto last_beat = std::chrono::steady_clock::now();
    while (!done) {
      cv.wait_for(lock, std::chrono::milliseconds(20));
      if (done) break;
      lock.unlock();
      if (peer_alive && !DrainIncoming(sender, decoder, auth)) {
        peer_alive = false;  // dispatcher gone; finish and cache anyway
      }
      const auto now = std::chrono::steady_clock::now();
      if (peer_alive &&
          now - last_beat >= std::chrono::duration<double>(
                                 g_config.heartbeat_interval)) {
        if (!sender.Send(FrameType::kHeartbeat, "", 5)) peer_alive = false;
        last_beat = now;
      }
      lock.lock();
    }
  }
  runner.join();
  g_slots.Release();

  if (proc.outcome == switchv::WorkerProcessResult::Outcome::kExited &&
      proc.exit_code == 0) {
    const std::string result(LastNonEmptyLine(proc.stdout_data));
    g_results.Insert(key, result);
    if (!peer_alive) return false;
    return sender.Send(FrameType::kShardResult, result, 30);
  }

  RemoteShardError error;
  if (proc.outcome == switchv::WorkerProcessResult::Outcome::kTimedOut) {
    error.kind = RemoteShardError::Kind::kTimeout;
    error.note = "killed after exceeding the shard deadline";
  } else if (proc.outcome ==
             switchv::WorkerProcessResult::Outcome::kSignaled) {
    error.kind = RemoteShardError::Kind::kCrash;
    error.note = "terminated by signal " + std::to_string(proc.term_signal);
  } else if (proc.outcome == switchv::WorkerProcessResult::Outcome::kExited) {
    error.kind = RemoteShardError::Kind::kExit;
    error.note = "exit code " + std::to_string(proc.exit_code);
  } else {
    error.kind = RemoteShardError::Kind::kSpawn;
    error.note = proc.error;
  }
  if (!peer_alive) return false;
  return sender.Send(FrameType::kShardError,
                     switchv::SerializeRemoteError(error), 30);
}

void HandleConnection(int fd) {
  FrameDecoder decoder;
  switchv::FrameAuthenticator auth;
  ConnectionSender sender{fd, auth};
  bool hello_done = false;
  char buffer[65536];
  while (true) {
    switchv::StatusOr<std::optional<Frame>> next = decoder.Next();
    if (!next.ok()) break;  // corrupt stream: drop; the peer reconnects
    if (next->has_value()) {
      Frame& frame = **next;
      if (!hello_done) {
        if (!g_config.auth_secret.empty()) {
          // Authentication required: the connection's first frame must be
          // a sealed hello. Anything else — including a truncated,
          // tampered, or wrongly-keyed hello — is PERMISSION_DENIED and
          // the connection simply closes; no request is ever parsed.
          if (frame.type != FrameType::kHello) break;
          switchv::StatusOr<switchv::FrameAuthenticator> accepted =
              switchv::AcceptAuthenticatedHello(g_config.auth_secret,
                                                frame.payload);
          if (!accepted.ok()) break;
          auth = std::move(accepted).value();
          hello_done = true;
          if (!sender.Send(FrameType::kHelloOk, "", 5)) break;
          continue;
        }
        hello_done = true;
        if (frame.type == FrameType::kHello) {
          // Unauthenticated hello: a health-check ping.
          if (!switchv::ParseHello(frame.payload).ok()) break;
          if (!switchv::SendFrame(fd, FrameType::kHelloOk, "", 5).ok()) break;
          continue;
        }
        // Not a hello: fall through — the unauthenticated protocol opens
        // with the request itself.
      }
      // Authenticated sessions verify every frame before parsing it.
      std::string payload;
      if (auth.enabled()) {
        if (frame.type == FrameType::kHello) break;  // one hello per session
        switchv::StatusOr<std::string> opened =
            auth.Open(frame.type, frame.payload);
        if (!opened.ok()) break;  // PERMISSION_DENIED: drop the connection
        payload = std::move(*opened);
      } else {
        payload = std::move(frame.payload);
      }
      if (frame.type == FrameType::kHeartbeat) {
        // Client heartbeat between shards; answer pings so RTT sampling
        // works even when no shard is in flight (legacy clients never send
        // these, so the branch is dead on a telemetry-off wire).
        if (payload.rfind("ping ", 0) == 0 &&
            !sender.Send(FrameType::kHeartbeat, "pong " + payload.substr(5),
                         5)) {
          break;
        }
        continue;
      }
      if (frame.type != FrameType::kShardRequest) break;
      switchv::StatusOr<RemoteShardRequest> request =
          switchv::ParseRemoteRequest(payload);
      if (!request.ok()) {
        RemoteShardError error;
        error.kind = RemoteShardError::Kind::kBadRequest;
        error.note = request.status().ToString();
        (void)sender.Send(FrameType::kShardError,
                          switchv::SerializeRemoteError(error), 5);
        break;
      }
      if (request->shard == g_config.drop_once_on_shard &&
          !g_drop_fired.exchange(true)) {
        break;  // test hook: simulate the host dying mid-shard
      }
      if (!ServeRequest(sender, decoder, *request, auth)) break;
      continue;
    }
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n > 0) {
      decoder.Feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    } else if (n == 0 || errno != EINTR) {
      break;
    }
  }
  ::close(fd);
}

bool ParseFlag(std::string_view arg, std::string_view name,
               std::string_view* value) {
  if (arg.substr(0, name.size()) != name) return false;
  *value = arg.substr(name.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bind = "127.0.0.1";
  int port = 0;
  int slots = static_cast<int>(std::thread::hardware_concurrency());
  const char* env_worker = std::getenv("SWITCHV_SHARD_WORKER");
  g_config.worker_binary = env_worker != nullptr ? env_worker : "";
  // The fleet provisioner hands the shared secret down via the environment
  // so it never appears in /proc/*/cmdline; --auth-secret= overrides.
  const char* env_secret = std::getenv("SWITCHV_FLEET_SECRET");
  g_config.auth_secret = env_secret != nullptr ? env_secret : "";

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    if (ParseFlag(arg, "--port=", &value)) {
      port = std::atoi(std::string(value).c_str());
    } else if (ParseFlag(arg, "--bind=", &value)) {
      bind = std::string(value);
    } else if (ParseFlag(arg, "--worker=", &value)) {
      g_config.worker_binary = std::string(value);
    } else if (ParseFlag(arg, "--slots=", &value)) {
      slots = std::atoi(std::string(value).c_str());
    } else if (ParseFlag(arg, "--heartbeat-interval=", &value)) {
      g_config.heartbeat_interval = std::atof(std::string(value).c_str());
    } else if (ParseFlag(arg, "--worker-arg=", &value)) {
      g_config.worker_args.emplace_back(value);
    } else if (ParseFlag(arg, "--drop-once-on-shard=", &value)) {
      g_config.drop_once_on_shard = std::atoi(std::string(value).c_str());
    } else if (ParseFlag(arg, "--auth-secret=", &value)) {
      g_config.auth_secret = std::string(value);
    } else {
      std::fprintf(stderr, "switchv_worker_host: unknown flag '%s'\n",
                   argv[i]);
      return 2;
    }
  }
  if (g_config.worker_binary.empty()) {
    std::fprintf(stderr,
                 "switchv_worker_host: no worker binary (--worker= or "
                 "$SWITCHV_SHARD_WORKER)\n");
    return 2;
  }
  if (g_config.heartbeat_interval <= 0) g_config.heartbeat_interval = 1.0;
  g_slots.set_limit(slots);

  int bound_port = port;
  const switchv::StatusOr<int> listener =
      switchv::ListenTcp(bind, port, &bound_port);
  if (!listener.ok()) {
    std::fprintf(stderr, "switchv_worker_host: %s\n",
                 listener.status().ToString().c_str());
    return 1;
  }
  std::printf("switchv_worker_host listening on %s:%d\n", bind.c_str(),
              bound_port);
  std::fflush(stdout);

  while (true) {
    const int client = ::accept(listener.value(), nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "switchv_worker_host: accept: %s\n",
                   std::strerror(errno));
      return 1;
    }
    std::thread(HandleConnection, client).detach();
  }
}
