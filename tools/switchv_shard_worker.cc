// switchv_shard_worker: runs exactly one campaign shard from a serialized
// spec (switchv/shard_io.h).
//
// Protocol: one ShardSpec line on stdin; on success, one ShardResult line
// on stdout and exit 0. Any failure — unparseable spec, unprovisionable
// scenario — renders to stderr and exits nonzero; the parent engine
// classifies the exit and synthesizes a harness incident. The worker never
// writes anything but protocol lines to stdout: with
// --telemetry-interval=S (seconds, > 0) it additionally streams interim
// TelemetrySample lines while the shard runs, and the result stays the
// last non-empty line either way — parents that ignore telemetry parse
// the stream unchanged.
//
// Test hooks (crash/timeout injection for the engine's isolation tests):
//   --abort-on-shard=N   abort() after parsing a spec with index N
//   --hang-on-shard=N    block forever after parsing a spec with index N
// Both fire after the spec is parsed, so the parent's spec write always
// completes and the failure is attributable to the shard, not the pipe.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>
#include <string_view>

#include "switchv/engine.h"

namespace {

bool ParseIntFlag(std::string_view arg, std::string_view name, int* out) {
  if (arg.substr(0, name.size()) != name) return false;
  *out = std::atoi(std::string(arg.substr(name.size())).c_str());
  return true;
}

bool ParseDoubleFlag(std::string_view arg, std::string_view name,
                     double* out) {
  if (arg.substr(0, name.size()) != name) return false;
  *out = std::atof(std::string(arg.substr(name.size())).c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int abort_on_shard = -1;
  int hang_on_shard = -1;
  double telemetry_interval = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (ParseIntFlag(arg, "--abort-on-shard=", &abort_on_shard)) continue;
    if (ParseIntFlag(arg, "--hang-on-shard=", &hang_on_shard)) continue;
    if (ParseDoubleFlag(arg, "--telemetry-interval=", &telemetry_interval)) {
      continue;
    }
    std::fprintf(stderr, "switchv_shard_worker: unknown flag '%s'\n",
                 argv[i]);
    return 2;
  }

  std::string line;
  if (!std::getline(std::cin, line) || line.empty()) {
    std::fprintf(stderr,
                 "switchv_shard_worker: expected a shard spec on stdin\n");
    return 1;
  }
  const switchv::StatusOr<switchv::WireShardSpec> spec =
      switchv::ParseShardSpec(line);
  if (!spec.ok()) {
    std::fprintf(stderr, "switchv_shard_worker: bad shard spec: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }

  if (spec->index == abort_on_shard) {
    std::abort();
  }
  if (spec->index == hang_on_shard) {
    while (true) pause();  // until the parent's deadline SIGKILLs us
  }

  // Interim samples are written whole-line-at-a-time under a mutex so the
  // sampler thread's writes never interleave with the final result line.
  std::mutex stdout_mu;
  switchv::ShardTelemetryHook hook;
  hook.interval_seconds = telemetry_interval;
  hook.emit = [&stdout_mu](const switchv::TelemetrySample& sample) {
    std::lock_guard<std::mutex> lock(stdout_mu);
    std::cout << switchv::SerializeTelemetrySample(sample) << "\n"
              << std::flush;
  };

  const switchv::StatusOr<switchv::WireShardResult> result =
      switchv::ExecuteShardSpec(*spec,
                                telemetry_interval > 0 ? &hook : nullptr);
  if (!result.ok()) {
    std::fprintf(stderr, "switchv_shard_worker: shard %d failed: %s\n",
                 spec->index, result.status().ToString().c_str());
    return 1;
  }
  std::lock_guard<std::mutex> lock(stdout_mu);
  std::cout << switchv::SerializeShardResult(*result) << "\n" << std::flush;
  return 0;
}
